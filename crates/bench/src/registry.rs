//! The typed experiment registry.
//!
//! Every table/figure reproduction (and every simulator-specific scaling
//! scenario) is an [`Experiment`]: an object with a stable id, a one-line
//! description and a `run` method returning a structured
//! [`Report`]. The `repro` binary iterates [`REGISTRY`] instead of
//! string-matching names, so adding an experiment is one entry here — the
//! CLI, `repro list`, `repro all` and the sweep-JSON plumbing pick it up
//! automatically.

use mesh_noc::PartitionShape;

use crate::experiments::{self, Effort};
use crate::report::Report;

/// Named options for one [`Experiment::run`] call.
///
/// This replaces the old `(effort, jobs, step_threads)` positional triple —
/// two adjacent `usize` parameters made transposed thread counts a silent
/// bug; with named fields a swap is visible at the call site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOpts {
    /// Simulation effort (warmup/measurement windows and sweep thinning).
    pub effort: Effort,
    /// Sweep worker threads; rate/population points are sharded across them
    /// with bit-identical results for any count.
    pub jobs: usize,
    /// Mesh-partition threads inside each worker's network (see
    /// [`mesh_noc::SweepRunner::with_step_threads`]); also bit-identical for
    /// any count.
    pub step_threads: usize,
    /// Explicit partition shape for each worker's network (`repro
    /// --partition rows:N|tiles:RxC`). `None` derives row strips from
    /// `step_threads`; `Some` overrides it for the open-loop sweeps (also
    /// bit-identical for any shape).
    pub shape: Option<PartitionShape>,
    /// Deterministic load-aware repartitioning epoch in cycles (`repro
    /// --rebalance N`); `None` keeps the cuts fixed. Bit-identical either
    /// way.
    pub rebalance_epoch: Option<u64>,
}

impl RunOpts {
    /// Single-threaded run at `effort` (the common default).
    #[must_use]
    pub fn new(effort: Effort) -> Self {
        Self {
            effort,
            jobs: 1,
            step_threads: 1,
            shape: None,
            rebalance_epoch: None,
        }
    }

    /// Replaces the sweep worker-thread count.
    #[must_use]
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Replaces the mesh-partition thread count.
    #[must_use]
    pub fn with_step_threads(mut self, step_threads: usize) -> Self {
        self.step_threads = step_threads;
        self
    }

    /// Requests an explicit partition shape for the open-loop sweeps.
    /// Callers must pass a shape with non-zero axes (the CLI rejects zero at
    /// parse time).
    #[must_use]
    pub fn with_partition_shape(mut self, shape: Option<PartitionShape>) -> Self {
        self.shape = shape;
        self
    }

    /// Requests deterministic load-aware repartitioning every `epoch` cycles
    /// (`None` disables it). Callers must pass a non-zero epoch.
    #[must_use]
    pub fn with_rebalance_epoch(mut self, epoch: Option<u64>) -> Self {
        self.rebalance_epoch = epoch;
        self
    }
}

/// One runnable experiment of the harness.
///
/// Implementations are zero-sized marker types registered in [`REGISTRY`];
/// they exist so experiments can be enumerated, described and dispatched as
/// values instead of through name matching.
pub trait Experiment: Sync {
    /// Stable CLI name (`repro <id>`).
    fn id(&self) -> &'static str;
    /// One-line human description printed by `repro list`.
    fn description(&self) -> &'static str;
    /// Runs the experiment with the given [`RunOpts`] (results are
    /// bit-identical for any `jobs` × `step_threads` combination).
    fn run(&self, opts: RunOpts) -> Report;
}

macro_rules! experiments {
    ($( $ty:ident { id: $id:literal, desc: $desc:literal, run: $run:expr } ),+ $(,)?) => {
        $(
            #[doc = concat!("The `", $id, "` experiment: ", $desc, ".")]
            #[derive(Debug, Clone, Copy)]
            pub struct $ty;

            impl Experiment for $ty {
                fn id(&self) -> &'static str {
                    $id
                }
                fn description(&self) -> &'static str {
                    $desc
                }
                fn run(&self, opts: RunOpts) -> Report {
                    let run: fn(RunOpts) -> Report = $run;
                    run(opts)
                }
            }
        )+

        /// Every experiment of the harness: the paper's tables and figures in
        /// paper order, then the simulator's own scaling scenarios.
        pub static REGISTRY: &[&dyn Experiment] = &[$(&$ty),+];
    };
}

experiments! {
    Table1 { id: "table1", desc: "theoretical limits of a k x k mesh (Table 1)",
             run: |_| Report::from_text("table1", experiments::table1_report()) },
    Table2 { id: "table2", desc: "comparison of mesh NoC chip prototypes (Table 2)",
             run: |_| Report::from_text("table2", experiments::table2_report()) },
    Fig5 { id: "fig5", desc: "latency vs throughput under mixed traffic (Fig. 5)",
           run: |opts| {
               let (text, sweeps) = experiments::fig5_full(opts);
               Report::from_text("fig5", text).with_sweeps(sweeps)
           } },
    Fig6 { id: "fig6", desc: "power waterfall A-D at 653 Gb/s broadcast delivery (Fig. 6)",
           run: |opts| Report::from_text("fig6", experiments::fig6_report(opts.effort)) },
    Table3 { id: "table3", desc: "critical-path analysis of the routers (Table 3)",
             run: |_| Report::from_text("table3", experiments::table3_report()) },
    Fig7 { id: "fig7", desc: "low-swing link energy efficiency (Fig. 7)",
           run: |_| Report::from_text("fig7", experiments::fig7_report()) },
    Table4 { id: "table4", desc: "area comparison with full-swing signaling (Table 4)",
             run: |_| Report::from_text("table4", experiments::table4_report()) },
    Fig8 { id: "fig8", desc: "ORION / post-layout / measured power model comparison (Fig. 8)",
           run: |opts| Report::from_text("fig8", experiments::fig8_report(opts.effort)) },
    Fig10 { id: "fig10", desc: "low-swing reliability vs energy trade-off (Fig. 10)",
            run: |_| Report::from_text("fig10", experiments::fig10_report()) },
    Fig11 { id: "fig11", desc: "tri-state RSD crossbar power vs multicast count (Fig. 11)",
            run: |_| Report::from_text("fig11", experiments::fig11_report()) },
    Fig12 { id: "fig12", desc: "repeated vs repeaterless low-swing links (Fig. 12)",
            run: |_| Report::from_text("fig12", experiments::fig12_report()) },
    Fig13 { id: "fig13", desc: "latency vs throughput under broadcast-only traffic (Fig. 13)",
            run: |opts| {
                let (text, sweeps) = experiments::fig13_full(opts);
                Report::from_text("fig13", text).with_sweeps(sweeps)
            } },
    ZeroLoad { id: "zeroload", desc: "zero-load router power breakdown (Section 4.1)",
               run: |opts| Report::from_text("zeroload", experiments::zero_load_report(opts.effort)) },
    Headline { id: "headline", desc: "Section 4.1 headline numbers and the PRBS-seed artifact",
               run: |opts| Report::from_text("headline", experiments::headline_report(opts.effort)) },
    Stress8 { id: "stress8", desc: "8x8-mesh mixed-traffic scaling stressor (not a paper figure)",
              run: |opts| {
                  let (text, sweeps) = experiments::stress8_full(opts);
                  Report::from_text("stress8", text).with_sweeps(sweeps)
              } },
    Stress16 { id: "stress16", desc: "16x16-mesh mixed-traffic stressor for the partitioned stepper (not a paper figure)",
               run: |opts| {
                   let (text, sweeps) = experiments::stress16_full(opts);
                   Report::from_text("stress16", text).with_sweeps(sweeps)
               } },
    Hotspot16 { id: "hotspot16", desc: "16x16-mesh weighted-hotspot stressor for the load-aware repartitioner (not a paper figure)",
                run: |opts| {
                    let (text, sweeps) = experiments::hotspot16_full(opts);
                    Report::from_text("hotspot16", text).with_sweeps(sweeps)
                } },
    Patterns { id: "patterns", desc: "per-pattern saturation sweep across the spatial-pattern gallery",
               run: experiments::patterns_report },
    Serving { id: "serving", desc: "closed-loop request/reply serving: RTT percentiles vs client population (not a paper figure)",
              run: experiments::serving_report },
}

/// Looks an experiment up by id.
#[must_use]
pub fn find(id: &str) -> Option<&'static dyn Experiment> {
    REGISTRY.iter().copied().find(|e| e.id() == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique_and_findable() {
        let mut seen = std::collections::HashSet::new();
        for experiment in REGISTRY {
            assert!(
                seen.insert(experiment.id()),
                "duplicate {}",
                experiment.id()
            );
            assert!(!experiment.description().is_empty());
            let found = find(experiment.id()).expect("id resolves");
            assert_eq!(found.id(), experiment.id());
        }
        assert!(find("fig99").is_none());
    }

    #[test]
    fn registry_keeps_paper_order_then_scaling_scenarios() {
        let ids: Vec<&str> = REGISTRY.iter().map(|e| e.id()).collect();
        assert_eq!(
            ids,
            [
                "table1",
                "table2",
                "fig5",
                "fig6",
                "table3",
                "fig7",
                "table4",
                "fig8",
                "fig10",
                "fig11",
                "fig12",
                "fig13",
                "zeroload",
                "headline",
                "stress8",
                "stress16",
                "hotspot16",
                "patterns",
                "serving",
            ]
        );
    }
}
