//! Differential record/replay tests.
//!
//! A recorded [`Trace`] replayed through trace-driven traffic sources must
//! reproduce the original run **bit for bit**: same latency statistics, same
//! throughput accounting, same activity counters, same total cycle count.
//! These tests record a trace from each preset scenario, replay it on a
//! fresh simulation, and compare the two `SimulationResult`s structurally
//! (every field, floats included) and as rendered bytes — any divergence in
//! packet ids, flit layouts or injection timing shows up here.

use noc_repro::noc::{NetworkVariant, NocConfig, Simulation, SimulationResult};
use noc_repro::traffic::{SeedMode, TrafficMix};
use noc_repro::types::Trace;

/// The four preset scenarios the differential harness pins: the fabricated
/// chip with its identical-seed artifact, the fixed-RTL per-node seeding,
/// the full-swing baseline, and a broadcast-only workload (multi-destination
/// events exercise the general destination-set encoding).
fn scenarios() -> [(&'static str, NocConfig, f64); 4] {
    [
        (
            "proposed chip, identical seeds",
            NocConfig::variant(NetworkVariant::ProposedChip).unwrap(),
            0.08,
        ),
        (
            "proposed chip, per-node seeds",
            NocConfig::proposed_chip()
                .unwrap()
                .with_seed_mode(SeedMode::PerNode),
            0.12,
        ),
        (
            "full-swing baseline, per-node seeds",
            NocConfig::variant(NetworkVariant::FullSwingUnicast)
                .unwrap()
                .with_seed_mode(SeedMode::PerNode),
            0.08,
        ),
        (
            "broadcast-only, per-node seeds",
            NocConfig::proposed_chip()
                .unwrap()
                .with_mix(TrafficMix::broadcast_only())
                .with_seed_mode(SeedMode::PerNode),
            0.03,
        ),
    ]
}

/// Records one run of `config` and returns its result plus the trace.
fn record_run(config: NocConfig, rate: f64) -> (SimulationResult, Trace) {
    let mut sim = Simulation::new(config).expect("valid configuration");
    sim.record_trace();
    let result = sim.run(rate, 150, 600).expect("valid rate");
    (result, sim.take_recorded_trace())
}

/// Replays `trace` on a fresh simulation of `config` over the same phase
/// schedule and returns the result.
fn replay_run(config: NocConfig, trace: &Trace, rate: f64) -> SimulationResult {
    let mut sim = Simulation::new(config).expect("valid configuration");
    sim.load_trace(trace).expect("matching mesh side");
    sim.run(rate, 150, 600).expect("valid rate")
}

#[test]
fn replaying_a_recorded_trace_is_bit_identical() {
    for (name, config, rate) in scenarios() {
        let (recorded, trace) = record_run(config, rate);
        assert!(
            !trace.is_empty(),
            "{name}: the recorded run injected no packets"
        );
        let replayed = replay_run(config, &trace, rate);
        // Structural equality covers every field: latency mean and
        // percentiles, throughput, counters, total cycles...
        assert_eq!(recorded, replayed, "{name}: replay diverged");
        // ...and the rendered form pins byte-for-byte identity.
        assert_eq!(
            format!("{recorded:?}"),
            format!("{replayed:?}"),
            "{name}: replay debug output diverged"
        );
    }
}

#[test]
fn replaying_a_serialized_trace_is_bit_identical() {
    // The full pipeline: record -> to_bytes -> from_bytes -> replay. A lossy
    // encoding (dropped destinations, rounded cycles, reordered events)
    // would change the replayed statistics.
    for (name, config, rate) in scenarios() {
        let (recorded, trace) = record_run(config, rate);
        let decoded = Trace::from_bytes(&trace.to_bytes()).expect("round trip");
        assert_eq!(trace, decoded, "{name}: serialization changed the trace");
        let replayed = replay_run(config, &decoded, rate);
        assert_eq!(
            recorded, replayed,
            "{name}: replay from serialized trace diverged"
        );
    }
}

#[test]
fn replay_is_independent_of_the_generator_seed() {
    // Once a trace is loaded, the Bernoulli machinery is out of the loop:
    // replaying under a different base seed must still reproduce the
    // recorded run exactly.
    let config = NocConfig::proposed_chip()
        .unwrap()
        .with_seed_mode(SeedMode::PerNode);
    let (recorded, trace) = record_run(config, 0.1);
    let replayed = replay_run(config.with_base_seed(0xBEEF), &trace, 0.1);
    assert_eq!(
        recorded, replayed,
        "replay must not depend on the replaying network's seed"
    );
}

#[test]
fn trace_replay_rejects_mesh_size_mismatches() {
    let (_, trace) = record_run(NocConfig::proposed_chip().unwrap(), 0.05);
    let mut sim8 = Simulation::new(NocConfig::proposed_chip().unwrap().with_side(8))
        .expect("valid configuration");
    assert!(
        sim8.load_trace(&trace).is_err(),
        "a 4x4 trace must not load into an 8x8 mesh"
    );
}
