//! Golden tests: refactors must not move a single bit of the historical
//! curves.
//!
//! The destination sequences and fig5 sweep values below were captured from
//! the generator *before* `SpatialPattern` existed (when the uniform draw
//! was inlined in `TrafficGenerator::build_packet`); the low-load sweep
//! values were captured *before* the data-oriented hot-path refactor
//! (inline VC FIFOs, SoA port banks, active-set step scheduling). The
//! default configurations must reproduce them exactly; updating these
//! constants is a deliberate act, not a side effect of a refactor.

use noc_repro::noc::{NetworkVariant, NocConfig, ServingRunner, SweepRunner};
use noc_repro::traffic::{SeedMode, SpatialPattern, TrafficGenerator, TrafficMix};
use noc_repro::types::TrafficKind;

/// First 48 unicast destinations of node 5 on a 4×4 mesh, per-node seeding,
/// default base seed — captured pre-refactor.
const NODE5_PERNODE_DESTS: [u16; 48] = [
    13, 12, 11, 0, 2, 14, 10, 0, 11, 9, 1, 14, 3, 15, 14, 6, 2, 10, 11, 13, 14, 6, 8, 7, 2, 14, 8,
    4, 11, 13, 9, 8, 14, 2, 10, 3, 2, 13, 11, 14, 10, 0, 10, 8, 4, 10, 9, 4,
];

/// First 48 unicast destinations of node 0 with the chip's identical-seed
/// artifact — captured pre-refactor.
const NODE0_IDENTICAL_DESTS: [u16; 48] = [
    1, 15, 13, 7, 14, 5, 14, 8, 5, 13, 3, 1, 14, 5, 1, 9, 6, 9, 15, 14, 5, 7, 4, 1, 12, 7, 3, 15,
    14, 4, 3, 15, 15, 7, 5, 1, 13, 8, 6, 15, 9, 2, 14, 13, 12, 10, 5, 8,
];

fn dest_sequence(node: u16, seed_mode: SeedMode) -> Vec<u16> {
    let mut gen = TrafficGenerator::with_base_seed(
        node,
        4,
        TrafficMix::unicast_requests_only(),
        seed_mode,
        1.0,
        TrafficGenerator::DEFAULT_BASE_SEED,
    );
    (0..48)
        .map(|c| {
            let p = gen.build_packet(TrafficKind::UnicastRequest, c);
            p.destinations().iter().next().unwrap()
        })
        .collect()
}

#[test]
fn uniform_legacy_reproduces_the_pre_refactor_destination_stream_bit_for_bit() {
    assert_eq!(dest_sequence(5, SeedMode::PerNode), NODE5_PERNODE_DESTS);
    assert_eq!(dest_sequence(0, SeedMode::Identical), NODE0_IDENTICAL_DESTS);
}

#[test]
fn the_resampling_uniform_is_a_deliberate_distribution_change() {
    // The unbiased pattern shares the PRBS stream but resamples collisions,
    // so its sequence must diverge from the captured legacy stream exactly
    // where the legacy draw skipped onto a successor (and nowhere before).
    let mut gen = TrafficGenerator::with_pattern(
        5,
        4,
        TrafficMix::unicast_requests_only(),
        SpatialPattern::uniform(),
        SeedMode::PerNode,
        1.0,
        TrafficGenerator::DEFAULT_BASE_SEED,
    );
    let resampled: Vec<u16> = (0..48)
        .map(|c| {
            let p = gen.build_packet(TrafficKind::UnicastRequest, c);
            p.destinations().iter().next().unwrap()
        })
        .collect();
    assert_ne!(resampled.as_slice(), NODE5_PERNODE_DESTS);
    assert!(resampled.iter().all(|&d| d < 16 && d != 5));
}

/// The fig5-style sweep of the proposed chip (default configuration:
/// identical seeds, mixed traffic, legacy-uniform destinations), captured
/// pre-refactor as exact `f64` bit patterns: (rate, latency, Gb/s,
/// flits/cycle, bypass fraction). The bypass column was deliberately
/// re-captured when bypass counting moved from per-flit to per-link-
/// traversal (the old per-flit count exceeded the hop count on forking
/// broadcasts, pushing the "fraction" above 1.0); the traffic, latency and
/// throughput columns are untouched — the fix is counting-only.
const FIG5_GOLDEN_POINTS: [(f64, u64, u64, u64, u64); 3] = [
    (
        0.02,
        0x403e_8a2e_8ba2_e8ba,
        0x4058_d4fd_f3b6_45a2,
        0x3ff8_d4fd_f3b6_45a2,
        0x3fe2_bcc5_176e_971a,
    ),
    (
        0.1,
        0x4044_a52a_aaaa_aaab,
        0x407d_a0c4_9ba5_e354,
        0x401d_a0c4_9ba5_e354,
        0x3fe2_da9d_c3cc_06e2,
    ),
    (
        0.2,
        0x406b_abac_37da_c37e,
        0x4088_f9db_22d0_e560,
        0x4028_f9db_22d0_e560,
        0x3fe2_c41b_01c9_33b5,
    ),
];

fn assert_sweep_matches(
    config: NocConfig,
    windows: (u64, u64),
    golden_points: &[(f64, u64, u64, u64, u64)],
) {
    let rates: Vec<f64> = golden_points.iter().map(|p| p.0).collect();
    let outcome = SweepRunner::new(2)
        .with_windows(windows.0, windows.1)
        .unwrap()
        .run(config, &rates)
        .unwrap();
    for (point, golden) in outcome.curve.points.iter().zip(golden_points) {
        assert_eq!(point.injection_rate, golden.0);
        assert_eq!(
            point.latency_cycles.to_bits(),
            golden.1,
            "latency moved at rate {}: {} cycles",
            golden.0,
            point.latency_cycles
        );
        assert_eq!(
            point.received_gbps.to_bits(),
            golden.2,
            "throughput moved at rate {}: {} Gb/s",
            golden.0,
            point.received_gbps
        );
        assert_eq!(
            point.received_flits_per_cycle.to_bits(),
            golden.3,
            "flits/cycle moved at rate {}",
            golden.0
        );
        assert_eq!(
            point.bypass_fraction.to_bits(),
            golden.4,
            "bypass fraction moved at rate {}",
            golden.0
        );
    }
}

#[test]
fn default_configs_reproduce_the_pre_refactor_fig5_sweep_bit_for_bit() {
    let config = NocConfig::variant(NetworkVariant::LowSwingBroadcastBypass).unwrap();
    assert_eq!(config.pattern, SpatialPattern::uniform_legacy());
    assert_sweep_matches(config, (200, 1000), &FIG5_GOLDEN_POINTS);
}

/// Low-load sweep points of the proposed chip, captured before the
/// data-oriented hot-path refactor (inline VC FIFOs, SoA port banks,
/// active-set scheduling). This is the regime where the active-set
/// scheduler actually skips work, so it pins exactly the cycles the
/// scheduler decides not to simulate: (rate, latency, Gb/s, flits/cycle,
/// bypass fraction) as exact `f64` bit patterns. The bypass column was
/// re-captured with the per-link-traversal bypass count (see
/// [`FIG5_GOLDEN_POINTS`]).
const LOWLOAD_GOLDEN_POINTS: [(f64, u64, u64, u64, u64); 3] = [
    (
        0.005,
        0x4035_4555_5555_5555,
        0x400d_2f1a_9fbe_76c9,
        0x3fad_2f1a_9fbe_76c9,
        0x3fe3_9b60_2f5a_4412,
    ),
    (
        0.02,
        0x4031_4a00_0000_0000,
        0x404e_353f_7ced_9168,
        0x3fee_353f_7ced_9168,
        0x3fe3_60e9_c2a3_4ebb,
    ),
    (
        0.05,
        0x403c_6216_42c8_590b,
        0x406d_c083_126e_978d,
        0x400d_c083_126e_978d,
        0x3fe2_4e92_41e7_a820,
    ),
];

/// One 8×8 low-load point (rate 0.01, shorter windows), pinning the larger
/// mesh — where idle-node skipping is most aggressive — through the same
/// refactor.
const LOWLOAD_8X8_GOLDEN_POINT: [(f64, u64, u64, u64, u64); 1] = [(
    0.01,
    0x4040_c200_0000_0000,
    0x4022_c5f9_2c5f_92c6,
    0x3fc2_c5f9_2c5f_92c6,
    0x3fe3_3b43_263a_ef05,
)];

#[test]
fn lowload_sweeps_survive_the_active_set_refactor_bit_for_bit() {
    let config = NocConfig::variant(NetworkVariant::LowSwingBroadcastBypass).unwrap();
    assert_sweep_matches(config, (200, 1000), &LOWLOAD_GOLDEN_POINTS);
    let config8 = NocConfig::variant(NetworkVariant::LowSwingBroadcastBypass)
        .unwrap()
        .with_side(8);
    assert_sweep_matches(config8, (200, 600), &LOWLOAD_8X8_GOLDEN_POINT);
}

/// The quick-effort closed-loop serving sweep of the proposed chip —
/// exactly what `repro --quick --jobs 2 serving` measures (populations
/// thinned to [2, 8, 32, 96], 200-cycle warm-up, 1000-cycle measurement) —
/// captured when the request/reply layer landed: (clients, RTT mean, RTT
/// p50, RTT p99, delivered Gb/s) as exact `f64` bit patterns. The RTT
/// percentiles come from the 4096-bin histogram, so a binning or merge
/// change shows up here even when the mean survives.
const SERVING_GOLDEN_POINTS: [(usize, u64, u64, u64, u64); 4] = [
    (
        2,
        0x4040_4fee_b7a0_f1f5,
        0x4040_0000_0000_0000,
        0x4046_8000_0000_0000,
        0x4056_c083_126e_978d,
    ),
    (
        8,
        0x4042_835a_35a3_5a36,
        0x4042_0000_0000_0000,
        0x404d_0000_0000_0000,
        0x4074_2b02_0c49_ba5e,
    ),
    (
        32,
        0x4056_120b_2164_2c86,
        0x4052_8000_0000_0000,
        0x4070_3000_0000_0000,
        0x4081_a560_4189_374c,
    ),
    (
        96,
        0x4070_ad92_143f_a36f,
        0x406f_2000_0000_0000,
        0x4085_3800_0000_0000,
        0x4081_2f9d_b22d_0e56,
    ),
];

#[test]
fn serving_quick_sweep_reproduces_the_pinned_rtt_curve_bit_for_bit() {
    let config = NocConfig::proposed_chip().unwrap();
    let populations: Vec<usize> = SERVING_GOLDEN_POINTS.iter().map(|p| p.0).collect();
    let outcome = ServingRunner::new(2)
        .with_windows(200, 1000)
        .unwrap()
        .run(config, &populations)
        .unwrap();
    assert_eq!(outcome.points.len(), SERVING_GOLDEN_POINTS.len());
    for (point, golden) in outcome.points.iter().zip(&SERVING_GOLDEN_POINTS) {
        assert_eq!(point.clients, golden.0);
        assert_eq!(
            point.result.rtt_mean_cycles.to_bits(),
            golden.1,
            "RTT mean moved at {} clients: {} cycles",
            golden.0,
            point.result.rtt_mean_cycles
        );
        assert_eq!(
            point.result.rtt_p50_cycles.to_bits(),
            golden.2,
            "RTT p50 moved at {} clients: {} cycles",
            golden.0,
            point.result.rtt_p50_cycles
        );
        assert_eq!(
            point.result.rtt_p99_cycles.to_bits(),
            golden.3,
            "RTT p99 moved at {} clients: {} cycles",
            golden.0,
            point.result.rtt_p99_cycles
        );
        assert_eq!(
            point.result.received_gbps.to_bits(),
            golden.4,
            "delivered throughput moved at {} clients: {} Gb/s",
            golden.0,
            point.result.received_gbps
        );
    }
}

/// First 12 16-bit words of the rate LFSR from the default seed, MSB-first —
/// captured from the serial one-bit-per-step register before `leap16`
/// existed. The leap tables must reproduce this stream exactly.
const LFSR_ACE1_WORDS: [u16; 12] = [
    0xee10, 0x46df, 0x0d4d, 0xa7c7, 0xacbe, 0x7745, 0x74ae, 0xd5d8, 0x55f5, 0x01ad, 0xd2b3, 0xdfb1,
];

#[test]
fn leap16_reproduces_the_serial_lfsr_word_stream_bit_for_bit() {
    // Independent serial reference, re-implemented here so a bug in the
    // leap tables cannot hide behind a matching bug in `Lfsr::next_bit`.
    let serial_words = |seed: u16, count: usize| -> Vec<u16> {
        let mut state = seed;
        (0..count)
            .map(|_| {
                let mut word = 0u16;
                for _ in 0..16 {
                    let bit = (state ^ (state >> 1) ^ (state >> 3) ^ (state >> 12)) & 1;
                    state = (state >> 1) | (bit << 15);
                    word = (word << 1) | bit;
                }
                word
            })
            .collect()
    };

    let mut leaping = noc_repro::sim::Lfsr::new(0xACE1);
    let leapt: Vec<u16> = (0..2000).map(|_| leaping.leap16()).collect();
    assert_eq!(leapt[..12], LFSR_ACE1_WORDS, "pinned prefix moved");
    assert_eq!(
        leapt,
        serial_words(0xACE1, 2000),
        "leap16 diverged from the serial register"
    );
    // A second seed guards against tables that only work for one orbit.
    let mut other = noc_repro::sim::Lfsr::new(0x0001);
    let other_leapt: Vec<u16> = (0..500).map(|_| other.leap16()).collect();
    assert_eq!(other_leapt, serial_words(0x0001, 500));
}
