//! Property-based tests over the core data structures and invariants.

use noc_repro::noc::{ClosedLoop, Network, NocConfig, ServingOpts};
use noc_repro::router::{MatrixArbiter, RoundRobinArbiter};
use noc_repro::sim::{
    bernoulli_threshold, BoundaryMailbox, FlitHandle, FlitSlab, Lfsr, PrbsGenerator,
};
use noc_repro::topology::limits::MeshLimits;
use noc_repro::topology::{routing, Mesh, PartitionMap};
use noc_repro::traffic::SpatialPattern;
use noc_repro::types::{
    ArrayFifo, Coord, DestinationSet, Direction, NodeId, Packet, PacketKind, PartitionId, Port,
    PortSet, Trace, TraceEvent,
};
use proptest::prelude::*;

proptest! {
    // ------------------------------------------------------------ array fifo

    /// Pins `ArrayFifo` — the inline ring behind every VC buffer — against a
    /// `VecDeque` reference model under random op sequences. Each word
    /// encodes (op, value) as `value * 6 + op`: op 0 pushes (skipped when
    /// full, since the fifo panics by contract), 1 pops, 2 peeks, 3 peeks
    /// mutably and edits, 4 clears, 5 checks `get` at `value % capacity`.
    #[test]
    fn array_fifo_matches_a_vecdeque_model(ops in proptest::collection::vec(0u32..6000, 0..200)) {
        let mut fifo: ArrayFifo<u32, 4> = ArrayFifo::new();
        let mut model: std::collections::VecDeque<u32> = std::collections::VecDeque::new();
        for word in ops {
            let (op, value) = (word % 6, word / 6);
            match op {
                0 => {
                    if !fifo.is_full() {
                        fifo.push_back(value);
                        model.push_back(value);
                    }
                }
                1 => prop_assert_eq!(fifo.pop_front(), model.pop_front()),
                2 => prop_assert_eq!(fifo.front(), model.front()),
                3 => {
                    if let Some(head) = fifo.front_mut() {
                        *head ^= value;
                    }
                    if let Some(head) = model.front_mut() {
                        *head ^= value;
                    }
                }
                4 => {
                    fifo.clear();
                    model.clear();
                }
                _ => {
                    let i = value as usize % fifo.capacity();
                    prop_assert_eq!(fifo.get(i), model.get(i));
                }
            }
            prop_assert_eq!(fifo.len(), model.len());
            prop_assert_eq!(fifo.is_empty(), model.is_empty());
            prop_assert_eq!(fifo.iter().copied().collect::<Vec<_>>(),
                            model.iter().copied().collect::<Vec<_>>());
        }
    }

    // ------------------------------------------------------------ coordinates

    #[test]
    fn coord_node_id_round_trips(k in 1u16..=16, x in 0u16..16, y in 0u16..16) {
        let coord = Coord::new(x % k, y % k);
        prop_assert_eq!(Coord::from_node_id(coord.node_id(k), k), coord);
    }

    #[test]
    fn manhattan_distance_is_a_metric(ax in 0u16..8, ay in 0u16..8, bx in 0u16..8, by in 0u16..8, cx in 0u16..8, cy in 0u16..8) {
        let (a, b, c) = (Coord::new(ax, ay), Coord::new(bx, by), Coord::new(cx, cy));
        prop_assert_eq!(a.manhattan_distance(b), b.manhattan_distance(a));
        prop_assert_eq!(a.manhattan_distance(a), 0);
        prop_assert!(a.manhattan_distance(c) <= a.manhattan_distance(b) + b.manhattan_distance(c));
    }

    // ------------------------------------------------------------ destination sets

    #[test]
    fn destination_set_behaves_like_a_set(ids in proptest::collection::vec(0u16..256, 0..40)) {
        let set: DestinationSet = ids.iter().copied().collect();
        let unique: std::collections::BTreeSet<u16> = ids.iter().copied().collect();
        prop_assert_eq!(set.len(), unique.len());
        for id in &unique {
            prop_assert!(set.contains(*id));
        }
        prop_assert_eq!(set.iter().collect::<Vec<_>>(), unique.into_iter().collect::<Vec<_>>());
    }

    #[test]
    fn destination_set_algebra_is_consistent(a in proptest::collection::vec(0u16..64, 0..20),
                                             b in proptest::collection::vec(0u16..64, 0..20)) {
        let sa: DestinationSet = a.into_iter().collect();
        let sb: DestinationSet = b.into_iter().collect();
        let union = sa.union(&sb);
        let inter = sa.intersection(&sb);
        let diff = sa.difference(&sb);
        prop_assert_eq!(union.len() + inter.len(), sa.len() + sb.len());
        prop_assert_eq!(diff.len() + inter.len(), sa.len());
        for id in inter.iter() {
            prop_assert!(sa.contains(id) && sb.contains(id));
        }
        for id in diff.iter() {
            prop_assert!(sa.contains(id) && !sb.contains(id));
        }
    }

    // ------------------------------------------------------------ port sets

    #[test]
    fn port_set_round_trips(ports in proptest::collection::vec(0usize..5, 0..5)) {
        let set: PortSet = ports.iter().filter_map(|&i| Port::from_index(i)).collect();
        for i in 0..5 {
            let port = Port::from_index(i).unwrap();
            prop_assert_eq!(set.contains(port), ports.contains(&i));
        }
        prop_assert!(set.len() <= 5);
    }

    // ------------------------------------------------------------ packets and flits

    #[test]
    fn packets_segment_into_well_formed_flits(id in 0u64..1_000_000, src in 0u16..16, dst in 0u16..16,
                                              kind in prop_oneof![Just(PacketKind::Request), Just(PacketKind::Response)]) {
        let dst = if dst == src { (dst + 1) % 16 } else { dst };
        let packet = Packet::new(id, src, DestinationSet::unicast(dst), kind, 42);
        let flits = packet.to_flits();
        prop_assert_eq!(flits.len(), kind.flit_count());
        prop_assert!(flits[0].kind().is_head());
        prop_assert!(flits[flits.len() - 1].kind().is_tail());
        for (i, flit) in flits.iter().enumerate() {
            prop_assert_eq!(flit.sequence() as usize, i);
            prop_assert_eq!(flit.packet_id(), id);
            prop_assert_eq!(flit.source(), src);
            prop_assert_eq!(flit.created_at(), 42);
            // Only the first and last flits may be head/tail.
            if i != 0 { prop_assert!(!flit.kind().is_head()); }
            if i != flits.len() - 1 { prop_assert!(!flit.kind().is_tail()); }
        }
    }

    // ------------------------------------------------------------ routing

    #[test]
    fn xy_routes_are_minimal_and_stay_in_the_mesh(k in 2u16..=8, from in 0u16..64, to in 0u16..64) {
        let mesh = Mesh::new(k).unwrap();
        let from = Coord::from_node_id(from % (k * k), k);
        let to = Coord::from_node_id(to % (k * k), k);
        let route = routing::xy_route(&mesh, from, to);
        prop_assert_eq!(route.len() as u32, from.manhattan_distance(to) + 1);
        for hop in &route {
            prop_assert!(mesh.contains(*hop));
        }
        // Dimension order: once the route starts moving in Y it never moves in X again.
        let mut seen_y = false;
        for pair in route.windows(2) {
            let moved_x = pair[0].x != pair[1].x;
            if seen_y {
                prop_assert!(!moved_x, "route moved in X after moving in Y");
            }
            if pair[0].y != pair[1].y {
                seen_y = true;
            }
        }
    }

    #[test]
    fn multicast_branches_partition_the_destinations(k in 2u16..=8,
                                                     current in 0u16..64,
                                                     dests in proptest::collection::vec(0u16..64, 1..20)) {
        let mesh = Mesh::new(k).unwrap();
        let nodes = k * k;
        let current = Coord::from_node_id(current % nodes, k);
        let dests: DestinationSet = dests.into_iter().map(|d| d % nodes).collect();
        let branches = routing::multicast_branches(&mesh, current, &dests);
        let mut covered = DestinationSet::empty();
        let mut total = 0;
        for branch in &branches {
            total += branch.destinations.len();
            covered = covered.union(&branch.destinations);
        }
        prop_assert_eq!(covered, dests);
        prop_assert_eq!(total, dests.len());
        prop_assert!(branches.len() <= 5);
    }

    #[test]
    fn broadcast_tree_reaches_every_node_with_minimal_links(k in 2u16..=8, source in 0u16..64) {
        let mesh = Mesh::new(k).unwrap();
        let nodes = k * k;
        let source = Coord::from_node_id(source % nodes, k);
        let dests = DestinationSet::broadcast(k, mesh.id_of(source));
        let visited = routing::multicast_tree_nodes(&mesh, source, &dests);
        prop_assert_eq!(visited.len(), usize::from(nodes));
        // A spanning tree of n nodes has exactly n-1 edges.
        prop_assert_eq!(
            routing::multicast_link_traversals(&mesh, source, &dests),
            usize::from(nodes) - 1
        );
    }

    // ------------------------------------------------------------ theoretical limits

    #[test]
    fn limits_are_monotone_in_mesh_size(k in 2u16..=15) {
        let small = MeshLimits::new(k);
        let large = MeshLimits::new(k + 1);
        prop_assert!(large.unicast_average_hops() > small.unicast_average_hops());
        prop_assert!(large.broadcast_average_hops() > small.broadcast_average_hops());
        prop_assert!(large.broadcast_saturation_rate() < small.broadcast_saturation_rate());
        prop_assert!(large.unicast_saturation_rate() <= small.unicast_saturation_rate());
    }

    #[test]
    fn broadcast_channel_load_is_always_ejection_limited(k in 2u16..=16, rate in 0.0f64..1.0) {
        let limits = MeshLimits::new(k);
        prop_assert!(limits.broadcast_ejection_load(rate) >= limits.broadcast_bisection_load(rate));
        prop_assert!((limits.broadcast_max_channel_load(rate) - limits.broadcast_ejection_load(rate)).abs() < 1e-12);
    }

    // ------------------------------------------------------------ arbiters

    #[test]
    fn round_robin_is_work_conserving_and_fair(requests in proptest::collection::vec(any::<bool>(), 1..8)) {
        let mut arb = RoundRobinArbiter::new(requests.len());
        match arb.arbitrate(&requests) {
            Some(winner) => prop_assert!(requests[winner]),
            None => prop_assert!(requests.iter().all(|&r| !r)),
        }
    }

    #[test]
    fn matrix_arbiter_is_work_conserving(requests in proptest::collection::vec(any::<bool>(), 1..8)) {
        let mut arb = MatrixArbiter::new(requests.len());
        match arb.arbitrate(&requests) {
            Some(winner) => prop_assert!(requests[winner]),
            None => prop_assert!(requests.iter().all(|&r| !r)),
        }
    }

    #[test]
    fn round_robin_mask_agrees_with_slice_on_random_32bit_patterns(
        patterns in proptest::collection::vec(0u32..u32::MAX, 1..40),
        size in 1usize..=32,
    ) {
        // Drive a slice-based and a mask-based arbiter through the same
        // request sequence; every pick and every internal rotation state
        // must stay identical.
        let mut slice_arb = RoundRobinArbiter::new(size);
        let mut mask_arb = RoundRobinArbiter::new(size);
        for pattern in patterns {
            let requests: Vec<bool> = (0..size).map(|i| pattern >> i & 1 != 0).collect();
            prop_assert_eq!(slice_arb.arbitrate(&requests), mask_arb.arbitrate_mask(pattern));
            prop_assert_eq!(&slice_arb, &mask_arb);
        }
    }

    #[test]
    fn matrix_mask_agrees_with_slice_on_random_32bit_patterns(
        patterns in proptest::collection::vec(0u32..u32::MAX, 1..40),
        size in 1usize..=32,
    ) {
        let mut slice_arb = MatrixArbiter::new(size);
        let mut mask_arb = MatrixArbiter::new(size);
        for pattern in patterns {
            let requests: Vec<bool> = (0..size).map(|i| pattern >> i & 1 != 0).collect();
            prop_assert_eq!(slice_arb.arbitrate(&requests), mask_arb.arbitrate_mask(pattern));
            prop_assert_eq!(&slice_arb, &mask_arb);
        }
    }

    #[test]
    fn matrix_arbiter_never_starves_anyone(size in 2usize..6, rounds in 10usize..60) {
        let mut arb = MatrixArbiter::new(size);
        let mut wins = vec![0u32; size];
        for _ in 0..rounds * size {
            let winner = arb.arbitrate(&vec![true; size]).unwrap();
            wins[winner] += 1;
        }
        let max = *wins.iter().max().unwrap();
        let min = *wins.iter().min().unwrap();
        prop_assert!(max - min <= 1, "wins spread too wide: {wins:?}");
    }

    // ------------------------------------------------------------ spatial patterns

    #[test]
    fn every_pattern_yields_in_range_never_self_destinations(
        k in 2u16..=8,
        seed in 1u16..,
        source_raw in 0u16..64,
        pick in 0usize..8,
        draws in 1usize..60,
    ) {
        let pattern = SpatialPattern::gallery(k)[pick];
        if pattern.validate(k).is_err() {
            // Bit permutations on non-power-of-two meshes: nothing to check.
            return Ok(());
        }
        let nodes = k * k;
        let source = source_raw % nodes;
        let mut prbs = PrbsGenerator::new(seed);
        for _ in 0..draws {
            let dest = pattern.draw(&mut prbs, source, k);
            prop_assert!(dest < nodes, "{}: dest {dest} outside {nodes} nodes", pattern.name());
            prop_assert!(dest != source, "{} self-addressed from {source}", pattern.name());
        }
    }

    #[test]
    fn pattern_draws_are_bit_identical_for_equal_prbs_state(
        k in 2u16..=8,
        seed in 1u16..,
        source_raw in 0u16..64,
        pick in 0usize..8,
        draws in 1usize..60,
    ) {
        // A pattern is a pure function of (PRBS state, source, k): two
        // generators walked in lockstep must agree on every draw and leave
        // their PRBS states identical — the property the parallel sweep
        // runner's determinism contract rests on.
        let pattern = SpatialPattern::gallery(k)[pick];
        if pattern.validate(k).is_err() {
            return Ok(());
        }
        let source = source_raw % (k * k);
        let mut a = PrbsGenerator::new(seed);
        let mut b = PrbsGenerator::new(seed);
        for _ in 0..draws {
            prop_assert_eq!(pattern.draw(&mut a, source, k), pattern.draw(&mut b, source, k));
            prop_assert!(a == b, "PRBS states diverged");
        }
    }

    #[test]
    fn legacy_uniform_matches_the_historical_draw_for_any_seed(
        k in 2u16..=8,
        seed in 1u16..,
        source_raw in 0u16..64,
        draws in 1usize..60,
    ) {
        let nodes = k * k;
        let source = source_raw % nodes;
        let pattern = SpatialPattern::uniform_legacy();
        let mut via_pattern = PrbsGenerator::new(seed);
        let mut reference = PrbsGenerator::new(seed);
        for _ in 0..draws {
            // The exact inline expression build_packet used pre-refactor.
            let mut expected = reference.next_below(nodes);
            if expected == source {
                expected = (expected + 1) % nodes;
            }
            prop_assert_eq!(pattern.draw(&mut via_pattern, source, k), expected);
        }
    }

    // ------------------------------------------------------------ PRBS

    #[test]
    fn lfsr_sequences_are_deterministic_and_nonzero(seed in 1u16.., steps in 1usize..500) {
        let mut a = Lfsr::new(seed);
        let mut b = Lfsr::new(seed);
        for _ in 0..steps {
            prop_assert_eq!(a.next_bit(), b.next_bit());
            prop_assert_ne!(a.state(), 0);
        }
    }

    #[test]
    fn prbs_chance_is_monotone_in_probability(seed in 1u16.., p in 0.0f64..0.5) {
        let trials = 4000;
        let mut low = PrbsGenerator::new(seed);
        let mut high = PrbsGenerator::new(seed);
        let low_hits: u32 = (0..trials).map(|_| u32::from(low.chance(p))).sum();
        let high_hits: u32 = (0..trials).map(|_| u32::from(high.chance(p + 0.4))).sum();
        prop_assert!(high_hits >= low_hits);
    }

    /// `Lfsr::leap16` must be a drop-in for sixteen serial register steps:
    /// same output word (MSB first), same end state, from any nonzero seed
    /// and across consecutive leaps.
    #[test]
    fn leap16_matches_sixteen_serial_steps(seed in 1u16.., leaps in 1usize..64) {
        let mut serial = Lfsr::new(seed);
        let mut leaping = Lfsr::new(seed);
        for _ in 0..leaps {
            let word = serial.next_bits(16);
            prop_assert_eq!(leaping.leap16(), word);
            prop_assert_eq!(leaping.state(), serial.state());
        }
    }

    /// The nap protocol (`scout_coin_run` + `skip_coin_flips`) must replay
    /// the exact Bernoulli stream a serial `coin` loop draws: every scouted
    /// flip is a loss, the first flip after the run wins, and the generator
    /// lands in the bit-identical end state.
    #[test]
    fn scout_then_skip_replays_the_exact_coin_stream(
        seed in 1u16..,
        p in 0.0f64..0.3,
        draws in 1usize..200,
    ) {
        let threshold = bernoulli_threshold(p);
        let mut serial = PrbsGenerator::new(seed);
        let serial_hits: Vec<bool> = (0..draws).map(|_| serial.coin(threshold)).collect();

        let mut napping = PrbsGenerator::new(seed);
        let mut i = 0usize;
        while i < draws {
            let run = napping
                .scout_coin_run(threshold, (draws - i) as u64)
                .min((draws - i) as u64);
            for hit in &serial_hits[i..i + run as usize] {
                prop_assert!(!hit, "scouted flips must all lose");
            }
            napping.skip_coin_flips(run);
            i += run as usize;
            if i < draws {
                prop_assert!(serial_hits[i], "the flip after a scouted run wins");
                prop_assert!(napping.coin(threshold));
                i += 1;
            }
        }
        prop_assert_eq!(napping, serial);
    }

    // ------------------------------------------------------------- flit slab

    /// Random insert/fork/take/release traffic against a shadow map: a
    /// recycled slot or handle must never alias a payload that is still
    /// live, and every live handle keeps resolving to its own packet.
    #[test]
    fn slab_handle_recycling_never_aliases_live_payloads(
        ops in proptest::collection::vec(0u32..4000, 0..120),
    ) {
        let flit_with_id = |id: u64| {
            let packet = Packet::new(id, 0, DestinationSet::unicast(3), PacketKind::Request, 0);
            packet.to_flits().remove(0)
        };
        let mut slab = FlitSlab::new();
        let mut live: Vec<(FlitHandle, u64)> = Vec::new();
        let mut next_id = 1u64;
        for op in ops {
            match op % 4 {
                0 => {
                    live.push((slab.insert(flit_with_id(next_id)), next_id));
                    next_id += 1;
                }
                1 => {
                    // A two-way fork: base inserted, replicated, released.
                    let base = slab.insert(flit_with_id(next_id));
                    for vc in 0..2 {
                        let replica = slab.replicate(
                            base,
                            DestinationSet::unicast(u16::from(vc)),
                            vc,
                            Some(vc == 0),
                        );
                        live.push((replica, next_id));
                    }
                    slab.release(base);
                    next_id += 1;
                }
                2 if !live.is_empty() => {
                    let victim = (op as usize / 4) % live.len();
                    let (handle, id) = live.swap_remove(victim);
                    prop_assert_eq!(slab.take(handle).packet_id(), id);
                }
                3 if !live.is_empty() => {
                    let victim = (op as usize / 4) % live.len();
                    let (handle, id) = live.swap_remove(victim);
                    prop_assert_eq!(slab.peek_payload(handle).packet_id(), id);
                    slab.release(handle);
                }
                _ => {}
            }
            // The aliasing invariant proper: recycling never redirected a
            // live handle to another packet's payload.
            for (handle, id) in &live {
                prop_assert_eq!(slab.peek_payload(*handle).packet_id(), *id);
            }
            prop_assert_eq!(slab.live(), live.len());
        }
        for (handle, id) in live.drain(..) {
            prop_assert_eq!(slab.take(handle).packet_id(), id);
        }
        prop_assert!(slab.is_empty());
    }

    /// A warm `Network::reset` must leave the pooled flit slab and event
    /// lanes observably cold: nothing in flight, and a post-reset drain with
    /// injection off stays empty instead of replaying stale handles.
    #[test]
    fn warm_network_reset_drains_the_slab_to_cold(seed in 0u64..u64::MAX, steps in 1usize..100) {
        let config = NocConfig::proposed_chip().unwrap().with_side(4);
        let mut network = Network::new(config, 0.4).unwrap();
        for _ in 0..steps {
            network.step(true);
        }
        network.reset(seed);
        prop_assert_eq!(network.in_flight_flits(), 0);
        for _ in 0..32 {
            network.step(false);
        }
        prop_assert_eq!(network.in_flight_flits(), 0);
        prop_assert_eq!(network.latency().count(), 0);
    }

    // ------------------------------------------------------- boundary mailbox

    /// The partitioned stepper's determinism rests on boundary mailboxes
    /// being strict FIFOs per directed partition edge: under any random
    /// interleaving of batched pushes and drains, events must come out in
    /// exactly the order they went in (`crates/sim/src/mailbox.rs` promises
    /// this no-reorder guarantee). Each op word decodes as (kind, count):
    /// odd words drain, even words push a batch of `word / 2 % 6` events.
    #[test]
    fn boundary_mailboxes_never_reorder_same_edge_deliveries(
        ops in proptest::collection::vec(0u32..1200, 0..80),
    ) {
        let mailbox: BoundaryMailbox<u32> = BoundaryMailbox::new();
        let mut model: std::collections::VecDeque<u32> = std::collections::VecDeque::new();
        let mut delivered: Vec<u32> = Vec::new();
        let mut batch: Vec<u32> = Vec::new();
        let mut next = 0u32;
        for word in ops {
            let (drain, count) = (word % 2 == 1, word / 2 % 6);
            if drain {
                let before = delivered.len();
                mailbox.drain_into(&mut delivered);
                // A reordered or dropped delivery shows up as a mismatch
                // against the FIFO model here.
                for value in &delivered[before..] {
                    prop_assert_eq!(model.pop_front(), Some(*value));
                }
                prop_assert!(mailbox.is_empty(), "drain must empty the mailbox");
            } else {
                for _ in 0..count {
                    batch.push(next);
                    model.push_back(next);
                    next += 1;
                }
                mailbox.push_batch(&mut batch);
                prop_assert!(batch.is_empty(), "push recycles the batch buffer");
            }
            prop_assert_eq!(mailbox.len(), model.len());
        }
        mailbox.drain_into(&mut delivered);
        // End-to-end FIFO: the concatenation of every drain is exactly the
        // push sequence.
        let expected: Vec<u32> = (0..next).collect();
        prop_assert_eq!(delivered, expected);
    }

    // ------------------------------------------------------- mesh partitions

    /// Every partition grid — even tiles, weighted tiles, weighted row
    /// strips — must assign each node to exactly one partition, with
    /// `partition_of` agreeing with region membership, the region-local
    /// order ascending with global node id (the serial-scan order the
    /// stepper's determinism rests on), and strip maps additionally owning
    /// contiguous node-id ranges.
    #[test]
    fn partition_grids_cover_every_node_exactly_once(
        k in 1u16..=16,
        rows in 0usize..=20,
        cols in 0usize..=20,
        weights in proptest::collection::vec(0u64..10_000, 256..257),
    ) {
        let mesh = Mesh::new(k).unwrap();
        let weights = &weights[..mesh.node_count()];
        for map in [
            PartitionMap::tiles(&mesh, rows, cols),
            PartitionMap::weighted_tiles(&mesh, rows, cols, weights),
            PartitionMap::weighted_rows(&mesh, rows, weights),
        ] {
            prop_assert!(!map.is_empty());
            prop_assert!(map.len() <= mesh.node_count());
            let mut owner = vec![usize::MAX; mesh.node_count()];
            for p in 0..map.len() {
                let region = map.region(p);
                let mut prev: Option<NodeId> = None;
                for (local, node) in region.nodes().enumerate() {
                    prop_assert_eq!(owner[usize::from(node)], usize::MAX);
                    owner[usize::from(node)] = p;
                    prop_assert_eq!(map.partition_of(node), p as PartitionId);
                    prop_assert_eq!(region.local_of(node), local);
                    prop_assert_eq!(region.node_of(local), node);
                    if let Some(prev) = prev {
                        prop_assert!(prev < node, "local order must ascend with node id");
                    }
                    prev = Some(node);
                }
            }
            prop_assert!(owner.iter().all(|&p| p != usize::MAX), "every node must be owned");
            if map.is_strips() {
                let mut next = 0usize;
                for p in 0..map.len() {
                    let range = map.node_range(p);
                    prop_assert_eq!(range.start, next);
                    prop_assert!(!range.is_empty(), "strips own at least one row");
                    next = range.end;
                }
                prop_assert_eq!(next, mesh.node_count());
            }
        }
    }

    /// `boundary_links` must enumerate exactly the directed mesh links that
    /// leave a partition — no invented edges, none missed — in the
    /// deterministic (node-ascending, port-ordered) order, with every cut
    /// link landing in the advertised grid neighbour. The reference is an
    /// independent scan of the full mesh adjacency.
    #[test]
    fn boundary_links_enumerate_exactly_the_mesh_cut_edges(
        k in 2u16..=16,
        rows in 1usize..=4,
        cols in 1usize..=4,
        weights in proptest::collection::vec(0u64..10_000, 256..257),
    ) {
        let mesh = Mesh::new(k).unwrap();
        let map = PartitionMap::weighted_tiles(&mesh, rows, cols, &weights[..mesh.node_count()]);
        for p in 0..map.len() {
            let links = map.boundary_links(&mesh, p);
            let mut expected: Vec<(NodeId, NodeId, Direction)> = Vec::new();
            for node in 0..mesh.node_count() as NodeId {
                if map.partition_of(node) != p as PartitionId {
                    continue;
                }
                for dir in Direction::ALL {
                    if let Some(next) = mesh.neighbor(mesh.coord_of(node), dir) {
                        if map.partition_of(mesh.id_of(next)) != p as PartitionId {
                            expected.push((node, mesh.id_of(next), dir));
                        }
                    }
                }
            }
            let got: Vec<(NodeId, NodeId, Direction)> =
                links.iter().map(|l| (l.from, l.to, l.direction)).collect();
            prop_assert_eq!(got, expected);
            for link in &links {
                prop_assert_eq!(
                    Some(map.partition_of(link.to)),
                    map.neighbor(p, link.direction)
                );
            }
        }
    }

    /// Batched deliveries across the *vertical* (East/West) cuts of a tile
    /// grid — one `BoundaryMailbox` per directed partition edge, exactly as
    /// the partitioned stepper allocates them — drain in strict push order
    /// on every edge, with the per-cycle batch order given by the
    /// deterministic `boundary_links` enumeration and drains interleaved
    /// mid-run as the merge point does.
    #[test]
    fn vertical_tile_cut_mailboxes_keep_per_edge_fifo_order(
        k in 2u16..=8,
        cols in 2usize..=8,
        cycles in 1usize..=12,
    ) {
        let mesh = Mesh::new(k).unwrap();
        // One tile row, many tile columns: every cut is vertical.
        let map = PartitionMap::tiles(&mesh, 1, cols);
        let parts = map.len();
        prop_assert!(parts >= 2, "k >= 2 and cols >= 2 must produce a cut");
        let mut edges: Vec<(BoundaryMailbox<u64>, std::collections::VecDeque<u64>)> =
            (0..parts * parts)
                .map(|_| (BoundaryMailbox::new(), std::collections::VecDeque::new()))
                .collect();
        let mut stamp = 0u64;
        for cycle in 0..cycles {
            for p in 0..parts {
                // Collect this cycle's crossings per receiving neighbour,
                // then hand each edge its batch in one push.
                let mut outgoing: Vec<Vec<u64>> = vec![Vec::new(); parts];
                for link in map.boundary_links(&mesh, p) {
                    prop_assert!(
                        matches!(link.direction, Direction::East | Direction::West),
                        "a 1-row tile grid only has vertical cuts"
                    );
                    outgoing[usize::from(map.partition_of(link.to))].push(stamp);
                    stamp += 1;
                }
                for (q, mut events) in outgoing.into_iter().enumerate() {
                    if events.is_empty() {
                        continue;
                    }
                    let (mailbox, model) = &mut edges[p * parts + q];
                    model.extend(events.iter().copied());
                    mailbox.push_batch(&mut events);
                    prop_assert!(events.is_empty(), "push recycles the batch buffer");
                }
            }
            // Interleave merge-point drains with the pushes.
            if cycle % 3 == 2 {
                for (mailbox, model) in &mut edges {
                    let mut delivered = Vec::new();
                    mailbox.drain_into(&mut delivered);
                    for value in delivered {
                        prop_assert_eq!(model.pop_front(), Some(value));
                    }
                }
            }
        }
        prop_assert!(stamp > 0, "at least one vertical crossing per cycle");
        for (mailbox, model) in &mut edges {
            let mut delivered = Vec::new();
            mailbox.drain_into(&mut delivered);
            let expected: Vec<u64> = model.drain(..).collect();
            prop_assert_eq!(delivered, expected);
            prop_assert!(mailbox.is_empty(), "final drain must empty the mailbox");
        }
    }

    // ------------------------------------------------------------------ traces

    /// The binary trace format must round-trip arbitrary event lists exactly:
    /// every cycle (LEB128 delta-coded), source, kind and destination set
    /// (unicast / broadcast / general tags) survives `to_bytes` →
    /// `from_bytes` bit for bit, and the decoded events come back in the
    /// canonical `(cycle, source)` order. Each word decodes one event:
    /// low bits pick the cycle gap, then the source node, the packet kind
    /// and the destination-set shape.
    #[test]
    fn trace_serialization_round_trips_arbitrary_events(
        k in 2u16..=16,
        words in proptest::collection::vec(any::<u64>(), 0..80),
    ) {
        let nodes = k * k;
        let mut cycle = 0u64;
        let mut events = Vec::with_capacity(words.len());
        for word in words {
            cycle += word % 300;
            let source = (word >> 9) as u16 % nodes;
            let kind = if word >> 20 & 1 == 0 { PacketKind::Request } else { PacketKind::Response };
            let destinations = match word >> 21 & 3 {
                0 => DestinationSet::unicast((source + 1 + (word >> 23) as u16 % (nodes - 1)) % nodes),
                1 => DestinationSet::broadcast(k, source),
                // A "general" multicast: a handful of nodes spread from the
                // word's high bits, never including the source.
                _ => (0..5)
                    .map(|i| (word >> (23 + 7 * i)) as u16 % nodes)
                    .filter(|&d| d != source)
                    .chain(std::iter::once((source + 1) % nodes))
                    .collect(),
            };
            events.push(TraceEvent { cycle, source, kind, destinations });
        }
        let trace = Trace::from_events(k, events);
        let decoded = Trace::from_bytes(&trace.to_bytes()).expect("well-formed bytes decode");
        prop_assert_eq!(&decoded, &trace);
        prop_assert_eq!(decoded.k(), k);
        for pair in decoded.events().windows(2) {
            prop_assert!(
                (pair[0].cycle, pair[0].source) <= (pair[1].cycle, pair[1].source),
                "decoded events left canonical order"
            );
        }
    }

    /// Double round trip: decoding is a left inverse of encoding on its own
    /// output, so re-encoding a decoded trace yields identical bytes.
    #[test]
    fn trace_bytes_are_a_fixed_point_of_the_round_trip(
        k in 2u16..=8,
        gaps in proptest::collection::vec(0u64..50, 0..40),
    ) {
        let nodes = k * k;
        let mut cycle = 0u64;
        let mut trace = Trace::new(k);
        for (i, gap) in gaps.iter().enumerate() {
            cycle += gap;
            let source = i as u16 % nodes;
            trace.record(TraceEvent {
                cycle,
                source,
                kind: PacketKind::Request,
                destinations: DestinationSet::unicast((source + 1) % nodes),
            });
        }
        let bytes = trace.to_bytes();
        let decoded = Trace::from_bytes(&bytes).expect("well-formed bytes decode");
        prop_assert_eq!(decoded.to_bytes(), bytes);
    }

    // ------------------------------------------------------- closed-loop serving

    /// Conservation and flow control of the closed-loop request/reply layer:
    /// after any issuing phase, requests only lead replies by what is still
    /// in flight; no client ever exceeds its outstanding window; and a
    /// bounded drain completes every request with **exactly one** reply —
    /// a dropped, duplicated or misrouted reply breaks one of these counts.
    #[test]
    fn closed_loop_conserves_requests_and_respects_the_window(
        clients in 1usize..24,
        window in 1u32..5,
        service_cycles in 0u64..24,
        cycles in 1u64..200,
    ) {
        let config = NocConfig::proposed_chip().unwrap();
        let opts = ServingOpts { window, service_cycles };
        let mut serving = ClosedLoop::new(config, clients, opts).unwrap();
        serving.advance(cycles);
        prop_assert!(serving.requests_issued() > 0);
        prop_assert!(serving.peak_outstanding() <= window, "window bound exceeded");
        // Issued minus completed must equal what is still in flight.
        prop_assert_eq!(
            serving.requests_issued() - serving.replies_completed(),
            serving.outstanding_requests() as u64
        );
        prop_assert!(serving.drain_remaining(50_000), "closed loop failed to drain");
        prop_assert_eq!(serving.replies_completed(), serving.requests_issued());
        prop_assert_eq!(serving.outstanding_requests(), 0);
        prop_assert!(serving.peak_outstanding() <= window, "window bound exceeded in drain");
    }
}
