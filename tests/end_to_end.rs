//! Integration tests spanning the whole stack: traffic generation, NICs,
//! routers, network orchestration, statistics and power accounting.

use noc_repro::noc::{sweep, Network, NetworkVariant, NocConfig, Scenario, Simulation};
use noc_repro::topology::limits::MeshLimits;
use noc_repro::traffic::{SeedMode, SpatialPattern, TrafficMix};

fn per_node(config: NocConfig) -> NocConfig {
    config.with_seed_mode(SeedMode::PerNode)
}

#[test]
fn proposed_network_latency_sits_near_the_theoretical_limit_at_low_load() {
    let config = per_node(NocConfig::proposed_chip().unwrap());
    let mut sim = Simulation::new(config).unwrap();
    let result = sim.run(0.01, 500, 3_000).unwrap();
    let limits = MeshLimits::new(4);
    // Mixed traffic: mostly 1-flit broadcasts -> limit ~7.5-9 cycles/packet.
    let limit = limits.packet_latency_limit(true, 2);
    assert!(result.average_latency_cycles >= limit * 0.8);
    assert!(
        result.average_latency_cycles <= limit + 4.0,
        "low-load latency {:.1} should be within a few cycles of the {:.1}-cycle limit",
        result.average_latency_cycles,
        limit
    );
}

#[test]
fn broadcast_throughput_approaches_the_ejection_limit() {
    let config =
        per_node(NocConfig::proposed_chip().unwrap()).with_mix(TrafficMix::broadcast_only());
    let mut sim = Simulation::new(config).unwrap();
    let result = sim.run(0.1, 1_000, 4_000).unwrap();
    // Theoretical limit: 16 flits/cycle = 1024 Gb/s. The paper reaches 91%;
    // we accept anything beyond 70% and below 100%.
    assert!(result.received_gbps <= 1024.0 + 1e-6);
    assert!(
        result.received_gbps >= 0.70 * 1024.0,
        "saturation throughput {:.0} Gb/s is too far from the 1024 Gb/s limit",
        result.received_gbps
    );
}

#[test]
fn baseline_network_saturates_much_earlier_than_the_proposed_one() {
    // Broadcast-only traffic is where the gap is widest (the paper's 2.2x):
    // the baseline NIC must serialise 15 unicast copies of every broadcast.
    let rates = [0.01, 0.02, 0.03, 0.04, 0.05, 0.06, 0.07];
    let comparison = sweep::compare(
        per_node(NocConfig::variant(NetworkVariant::LowSwingBroadcastBypass).unwrap())
            .with_mix(TrafficMix::broadcast_only()),
        per_node(NocConfig::variant(NetworkVariant::FullSwingUnicast).unwrap())
            .with_mix(TrafficMix::broadcast_only()),
        &rates,
        500,
        2_000,
    )
    .unwrap();
    assert!(
        comparison.throughput_improvement > 1.3,
        "expected a large saturation-throughput gain, got {:.2}x",
        comparison.throughput_improvement
    );
    assert!(
        comparison.latency_reduction > 0.4,
        "expected a large low-load latency reduction, got {:.0}%",
        comparison.latency_reduction * 100.0
    );
    assert!(
        comparison.fraction_of_theoretical_limit > 0.6,
        "the proposed network should approach the 1024 Gb/s limit, got {:.0}%",
        comparison.fraction_of_theoretical_limit * 100.0
    );
}

#[test]
fn identical_seeds_cost_extra_contention_latency() {
    let run = |seed_mode| {
        let config = NocConfig::proposed_chip()
            .unwrap()
            .with_seed_mode(seed_mode);
        let mut sim = Simulation::new(config).unwrap();
        sim.run(0.03, 500, 3_000).unwrap().average_latency_cycles
    };
    let identical = run(SeedMode::Identical);
    let per_node = run(SeedMode::PerNode);
    assert!(
        identical > per_node,
        "the chip's identical-seed artifact must cost latency: identical {identical:.2} vs per-node {per_node:.2}"
    );
}

#[test]
fn textbook_baseline_is_slower_than_the_aggressive_baseline() {
    let run = |variant| {
        let config = per_node(NocConfig::variant(variant).unwrap())
            .with_mix(TrafficMix::unicast_requests_only());
        let mut sim = Simulation::new(config).unwrap();
        sim.run(0.02, 300, 2_000).unwrap().average_latency_cycles
    };
    let textbook = run(NetworkVariant::TextbookBaseline);
    let aggressive = run(NetworkVariant::FullSwingUnicast);
    let proposed = run(NetworkVariant::LowSwingBroadcastBypass);
    assert!(
        textbook > aggressive,
        "textbook {textbook:.1} vs aggressive {aggressive:.1}"
    );
    assert!(
        aggressive > proposed,
        "aggressive {aggressive:.1} vs proposed {proposed:.1}"
    );
}

#[test]
fn power_waterfall_matches_the_papers_direction() {
    // A -> D must reduce total power, with the datapath falling at the A -> B
    // step; the exact magnitudes are recorded in EXPERIMENTS.md.
    let rate = 0.04;
    let mut totals = Vec::new();
    let mut datapaths = Vec::new();
    for variant in NetworkVariant::FIG6 {
        let config = NocConfig::variant(variant)
            .unwrap()
            .with_mix(TrafficMix::broadcast_only());
        let mut sim = Simulation::new(config).unwrap();
        let result = sim.run(rate, 500, 2_000).unwrap();
        let power = result.power(&config.energy_params());
        totals.push(power.total_mw());
        datapaths.push(power.datapath_group_mw());
    }
    assert!(
        datapaths[1] < datapaths[0],
        "low-swing must cut datapath power"
    );
    assert!(
        totals[3] < totals[0],
        "the full waterfall must reduce total power"
    );
    let reduction = 1.0 - totals[3] / totals[0];
    assert!(
        (0.25..=0.70).contains(&reduction),
        "A->D total reduction {:.0}% should be in the same ballpark as the paper's 38%",
        reduction * 100.0
    );
}

#[test]
fn network_conserves_flits_across_variants() {
    for variant in [
        NetworkVariant::TextbookBaseline,
        NetworkVariant::FullSwingUnicast,
        NetworkVariant::LowSwingBroadcastNoBypass,
        NetworkVariant::LowSwingBroadcastBypass,
    ] {
        let config = per_node(NocConfig::variant(variant).unwrap());
        let mut network = Network::new(config, 0.06).unwrap();
        network.set_measuring(true);
        for _ in 0..1_200 {
            network.step(true);
        }
        for _ in 0..4_000 {
            network.step(false);
        }
        assert_eq!(
            network.in_flight_flits(),
            0,
            "{variant:?}: network must drain completely"
        );
        assert_eq!(
            network.outstanding_tracked_packets(),
            0,
            "{variant:?}: every packet must reach every destination"
        );
    }
}

/// Workspace smoke canary (run on every CI push): the whole stack — config,
/// traffic, NICs, routers, network, statistics — must assemble a 4x4
/// `proposed_chip` and produce sane numbers from a short saturated run.
#[test]
fn workspace_smoke_canary() {
    let config = per_node(NocConfig::proposed_chip().unwrap());
    let mut sim = Simulation::new(config).unwrap();
    // Drive the network well past saturation so the throughput reading is the
    // saturation throughput, not the offered load.
    let result = sim.run(0.5, 200, 800).unwrap();
    assert!(
        result.received_gbps > 0.0,
        "saturation throughput must be positive, got {} Gb/s",
        result.received_gbps
    );
    assert!(
        result.average_latency_cycles.is_finite() && result.average_latency_cycles > 0.0,
        "latency must be finite and positive, got {}",
        result.average_latency_cycles
    );
    assert!(result.measured_packets > 0, "the run must measure packets");
}

#[test]
fn friendly_patterns_beat_adversarial_ones_on_low_load_latency() {
    // Nearest-neighbour unicasts travel 1 hop (or k-1 on the wrap); the
    // bit-complement permutation crosses the whole mesh. At low load the
    // measured latency gap must reflect the hop-count gap.
    let run = |pattern| {
        Scenario::builder()
            .pattern(pattern)
            .mix(TrafficMix::unicast_only())
            .seed_mode(SeedMode::PerNode)
            .rate(0.05)
            .build()
            .expect("valid scenario")
            .run(300, 2_000)
            .expect("valid rate")
            .average_latency_cycles
    };
    let neighbor = run(SpatialPattern::NearestNeighbor);
    let complement = run(SpatialPattern::BitComplement);
    assert!(
        neighbor + 1.0 < complement,
        "nearest-neighbor {neighbor:.1} cycles should clearly beat bit-complement {complement:.1}"
    );
}

#[test]
fn pattern_networks_conserve_flits() {
    for pattern in SpatialPattern::gallery(4) {
        let config = per_node(NocConfig::proposed_chip().unwrap())
            .with_mix(TrafficMix::unicast_only())
            .with_pattern(pattern);
        let mut network = Network::new(config, 0.1).unwrap();
        network.set_measuring(true);
        for _ in 0..1_200 {
            network.step(true);
        }
        for _ in 0..4_000 {
            network.step(false);
        }
        assert_eq!(
            network.in_flight_flits(),
            0,
            "{}: network must drain completely",
            pattern.name()
        );
        assert_eq!(
            network.outstanding_tracked_packets(),
            0,
            "{}: every packet must reach its destination",
            pattern.name()
        );
    }
}

#[test]
fn bypass_fraction_decreases_with_load() {
    let run = |rate| {
        let config = per_node(NocConfig::proposed_chip().unwrap());
        let mut sim = Simulation::new(config).unwrap();
        sim.run(rate, 500, 2_000).unwrap().bypass_fraction
    };
    let low = run(0.01);
    let high = run(0.2);
    assert!(
        low > high,
        "bypassing gets harder under contention: {low:.2} vs {high:.2}"
    );
    assert!(
        low > 0.6,
        "at low load most hops should bypass, got {low:.2}"
    );
}
