//! Determinism guarantees of the simulation core.
//!
//! The parallel sweep runner is only sound because every simulation is a
//! pure function of `(configuration, injection rate)`: these tests pin that
//! property down — repeated sequential runs must agree byte for byte, a
//! sweep sharded over N worker threads must reproduce the single-threaded
//! curve exactly, and a *warm* network (reused across sweep points via
//! `Network::reset`, all buffer capacity retained) must behave
//! bit-identically to a cold-constructed one.

use noc_repro::noc::{
    sweep, Network, NetworkVariant, NocConfig, PartitionShape, ServingResult, ServingRunner,
    Simulation, SimulationResult, SweepRunner,
};
use noc_repro::traffic::{SeedMode, SpatialPattern, TrafficMix};

fn run_once(config: NocConfig, rate: f64) -> SimulationResult {
    let mut sim = Simulation::new(config).expect("valid configuration");
    sim.run(rate, 150, 600).expect("valid rate")
}

#[test]
fn sequential_runs_are_byte_identical() {
    for variant in [
        NetworkVariant::ProposedChip,
        NetworkVariant::FullSwingUnicast,
    ] {
        for seed_mode in [SeedMode::Identical, SeedMode::PerNode] {
            let config = NocConfig::variant(variant)
                .unwrap()
                .with_seed_mode(seed_mode);
            let first = run_once(config, 0.08);
            let second = run_once(config, 0.08);
            // Structural equality covers every field (floats included)...
            assert_eq!(first, second, "{variant:?}/{seed_mode:?} diverged");
            // ...and the rendered form pins down byte-for-byte identity.
            assert_eq!(
                format!("{first:?}"),
                format!("{second:?}"),
                "{variant:?}/{seed_mode:?} debug output diverged"
            );
        }
    }
}

#[test]
fn base_seed_changes_the_run() {
    let config = NocConfig::proposed_chip()
        .unwrap()
        .with_seed_mode(SeedMode::PerNode);
    let default_seed = run_once(config, 0.08);
    let other_seed = run_once(config.with_base_seed(0xBEEF), 0.08);
    assert_ne!(
        default_seed, other_seed,
        "distinct base seeds must produce distinct traffic"
    );
}

#[test]
fn warm_reset_matches_cold_construction() {
    // A sweep point run on a warmed, reset simulation must equal the same
    // point run on a freshly constructed one — the property that makes
    // batching sweep points through one network per worker sound.
    for variant in [
        NetworkVariant::ProposedChip,
        NetworkVariant::FullSwingUnicast,
    ] {
        let config = NocConfig::variant(variant)
            .unwrap()
            .with_seed_mode(SeedMode::PerNode);
        // Warm one simulation across several (seed, rate) points...
        let mut warm = Simulation::new(config).expect("valid configuration");
        let points: [(u64, f64); 3] = [(0x0101, 0.04), (0xBEEF, 0.12), (0x7A5A, 0.22)];
        for (seed, rate) in points {
            warm.reset(seed);
            let warm_result = warm.run(rate, 150, 600).expect("valid rate");
            // ...and compare each against a cold simulation of that seed.
            let cold_config = config.with_base_seed(seed as u16);
            let cold_result = run_once(cold_config, rate);
            assert_eq!(
                warm_result, cold_result,
                "{variant:?} seed {seed:#x} rate {rate} diverged warm vs cold"
            );
        }
    }
}

#[test]
fn sweep_runner_matches_single_thread_exactly() {
    let rates = [0.02, 0.06, 0.1, 0.14, 0.18, 0.22, 0.26];
    for variant in [
        NetworkVariant::ProposedChip,
        NetworkVariant::FullSwingUnicast,
    ] {
        let config = NocConfig::variant(variant)
            .unwrap()
            .with_seed_mode(SeedMode::PerNode);
        let single = SweepRunner::new(1)
            .with_windows(100, 400)
            .unwrap()
            .run(config, &rates)
            .unwrap();
        for jobs in [2, 3, 8] {
            let sharded = SweepRunner::new(jobs)
                .with_windows(100, 400)
                .unwrap()
                .run(config, &rates)
                .unwrap();
            assert_eq!(
                single.curve, sharded.curve,
                "{variant:?} with {jobs} threads produced a different curve"
            );
            // Per-point full results (counters and all) must match too.
            for (s, p) in single.points.iter().zip(sharded.points.iter()) {
                assert_eq!(s.injection_rate, p.injection_rate);
                assert_eq!(
                    s.result, p.result,
                    "{variant:?} rate {} diverged at {jobs} threads",
                    s.injection_rate
                );
            }
        }
    }
}

#[test]
fn legacy_sweep_entry_point_agrees_with_the_runner() {
    let config = NocConfig::proposed_chip()
        .unwrap()
        .with_seed_mode(SeedMode::PerNode);
    let rates = [0.02, 0.1, 0.2];
    let via_fn = sweep::sweep(config, &rates, 100, 400).unwrap();
    let via_runner = SweepRunner::new(4)
        .with_windows(100, 400)
        .unwrap()
        .run(config, &rates)
        .unwrap();
    assert_eq!(via_fn, via_runner.curve);
}

#[test]
fn non_uniform_patterns_keep_every_determinism_guarantee() {
    // The pattern abstraction must not leak scheduling into the traffic:
    // for a deterministic permutation, a PRBS-consuming hotspot and the
    // unbiased resampling uniform, a sweep sharded over N threads (warm
    // batched networks and all) must reproduce the single-threaded curve
    // bit for bit, and repeated runs must agree exactly.
    let rates = [0.05, 0.25, 0.45, 0.65];
    for pattern in [
        SpatialPattern::Transpose,
        SpatialPattern::uniform(),
        SpatialPattern::corner_hotspot(4, 0.5),
    ] {
        let config = NocConfig::proposed_chip()
            .unwrap()
            .with_mix(TrafficMix::unicast_only())
            .with_seed_mode(SeedMode::PerNode)
            .with_pattern(pattern);
        let single = SweepRunner::new(1)
            .with_windows(100, 400)
            .unwrap()
            .run(config, &rates)
            .unwrap();
        for jobs in [2, 5] {
            let sharded = SweepRunner::new(jobs)
                .with_windows(100, 400)
                .unwrap()
                .run(config, &rates)
                .unwrap();
            assert_eq!(
                single.curve, sharded.curve,
                "{pattern:?} with {jobs} threads produced a different curve"
            );
            for (s, p) in single.points.iter().zip(sharded.points.iter()) {
                assert_eq!(
                    s.result, p.result,
                    "{pattern:?} rate {} diverged at {jobs} threads",
                    s.injection_rate
                );
            }
        }
        let again = run_once(config, 0.25);
        assert_eq!(
            again,
            run_once(config, 0.25),
            "{pattern:?} repeated runs diverged"
        );
    }
}

#[test]
fn partitioned_stepping_is_bit_identical_to_serial() {
    // The row-strip partitioned stepper (per-edge boundary mailboxes merged
    // in fixed edge order after the cycle barrier) is a pure scheduling
    // change: for every thread count the mesh must reproduce the serial
    // stepper's traffic bit for bit — with the NIC nap on and off, across
    // drain phases with injection disabled, and through a mid-run rate
    // change that forces the wake/catch-up paths inside every partition.
    let rate = 0.2;
    for nic_idle_skip in [true, false] {
        let config = NocConfig::proposed_chip()
            .unwrap()
            .with_seed_mode(SeedMode::PerNode);
        let mut serial = Network::new(config, rate).expect("valid configuration");
        serial.set_nic_idle_skip(nic_idle_skip);
        serial.set_measuring(true);
        let mut partitioned: Vec<Network> = [1usize, 2, 4]
            .into_iter()
            .map(|threads| {
                let mut network =
                    Network::with_step_threads(config, rate, threads).expect("valid thread count");
                assert_eq!(network.step_threads(), threads);
                network.set_nic_idle_skip(nic_idle_skip);
                network.set_measuring(true);
                network
            })
            .collect();

        let phases = [(200usize, true), (60, false), (120, true), (40, false)];
        for (round, (steps, inject)) in phases.into_iter().enumerate() {
            for _ in 0..steps {
                serial.step(inject);
                for network in &mut partitioned {
                    network.step(inject);
                    assert_eq!(
                        network.in_flight_flits(),
                        serial.in_flight_flits(),
                        "in-flight flits diverged at {} threads (round {round}, nap {nic_idle_skip})",
                        network.step_threads()
                    );
                }
            }
            if round == 1 {
                serial.set_rate(rate * 2.5);
                for network in &mut partitioned {
                    network.set_rate(rate * 2.5);
                }
            }
        }
        for network in &partitioned {
            let threads = network.step_threads();
            assert_eq!(
                network.injected_packets(),
                serial.injected_packets(),
                "injection streams diverged at {threads} threads (nap {nic_idle_skip})"
            );
            assert_eq!(
                network.counters(),
                serial.counters(),
                "activity counters diverged at {threads} threads (nap {nic_idle_skip})"
            );
            assert_eq!(
                format!("{:?}", network.latency()),
                format!("{:?}", serial.latency()),
                "latency statistics diverged at {threads} threads (nap {nic_idle_skip})"
            );
            assert_eq!(
                format!("{:?}", network.throughput()),
                format!("{:?}", serial.throughput()),
                "throughput statistics diverged at {threads} threads (nap {nic_idle_skip})"
            );
        }
    }
}

#[test]
fn tiled_and_rebalanced_stepping_is_bit_identical_to_serial() {
    // The 2-D tile generalisation and the load-aware repartitioner are pure
    // scheduling changes on top of the row-strip stepper: for every
    // partition shape (row strips and 2-D tiles, so both horizontal and
    // vertical boundary cuts), every step-thread count {1, 2, 4} and every
    // rebalance setting, the mesh must reproduce the serial stepper's
    // traffic bit for bit — across drain phases with injection disabled and
    // through a mid-run rate change that forces the wake/catch-up and
    // weight-migration paths.
    let rate = 0.2;
    let config = NocConfig::proposed_chip()
        .unwrap()
        .with_seed_mode(SeedMode::PerNode);
    let mut serial = Network::new(config, rate).expect("valid configuration");
    serial.set_measuring(true);
    let variants: [(PartitionShape, Option<u64>); 6] = [
        (PartitionShape::Rows(1), None),
        (PartitionShape::Rows(2), Some(64)),
        (PartitionShape::Rows(4), None),
        (PartitionShape::Rows(4), Some(100)),
        (PartitionShape::Tiles { rows: 2, cols: 2 }, None),
        (PartitionShape::Tiles { rows: 2, cols: 2 }, Some(64)),
    ];
    let mut partitioned: Vec<Network> = variants
        .into_iter()
        .map(|(shape, epoch)| {
            let mut network = Network::new(config, rate).expect("valid configuration");
            network.set_partition_shape(shape).expect("valid shape");
            network.set_rebalance_epoch(epoch);
            network.set_measuring(true);
            network
        })
        .collect();

    let phases = [(200usize, true), (60, false), (120, true), (40, false)];
    for (round, (steps, inject)) in phases.into_iter().enumerate() {
        for _ in 0..steps {
            serial.step(inject);
            for network in &mut partitioned {
                network.step(inject);
                assert_eq!(
                    network.in_flight_flits(),
                    serial.in_flight_flits(),
                    "in-flight flits diverged on {:?} (round {round})",
                    network.partition_shape()
                );
            }
        }
        if round == 1 {
            serial.set_rate(rate * 2.5);
            for network in &mut partitioned {
                network.set_rate(rate * 2.5);
            }
        }
    }
    // The per-node activity weights are simulated state too: every layout
    // must agree on the total busy ledger, not just on the traffic.
    let serial_busy: u64 = serial.partition_loads().iter().sum();
    for network in &partitioned {
        let shape = network.partition_shape();
        assert_eq!(
            network.injected_packets(),
            serial.injected_packets(),
            "injection streams diverged on {shape:?}"
        );
        assert_eq!(
            network.counters(),
            serial.counters(),
            "activity counters diverged on {shape:?}"
        );
        assert_eq!(
            network.partition_loads().iter().sum::<u64>(),
            serial_busy,
            "activity weights diverged on {shape:?}"
        );
        assert_eq!(
            format!("{:?}", network.latency()),
            format!("{:?}", serial.latency()),
            "latency statistics diverged on {shape:?}"
        );
        assert_eq!(
            format!("{:?}", network.throughput()),
            format!("{:?}", serial.throughput()),
            "throughput statistics diverged on {shape:?}"
        );
    }
}

#[test]
fn warm_tiled_rebalanced_resets_match_cold_serial_runs() {
    // `reset(seed)` on a tiled, rebalancing simulation restores the
    // *unweighted* cuts of the requested shape (a rebalance may have moved
    // them mid-run) and must reproduce a cold serial run exactly — the
    // property that lets sweep workers batch points on any layout.
    let config = NocConfig::proposed_chip()
        .unwrap()
        .with_seed_mode(SeedMode::PerNode);
    let mut warm = Simulation::new(config)
        .expect("valid configuration")
        .with_partition_shape(PartitionShape::Tiles { rows: 2, cols: 2 })
        .expect("valid shape");
    warm.set_rebalance_epoch(Some(64));
    for (seed, rate) in [(0x0101u64, 0.04), (0xBEEF, 0.14), (0x7A5A, 0.24)] {
        warm.reset(seed);
        let warm_result = warm.run(rate, 150, 600).expect("valid rate");
        let cold_result = run_once(config.with_base_seed(seed as u16), rate);
        assert_eq!(
            warm_result, cold_result,
            "seed {seed:#x} rate {rate} diverged warm-tiled-rebalanced vs cold-serial"
        );
    }
}

#[test]
fn warm_partitioned_resets_match_cold_serial_runs() {
    // Sweep workers batch points through one warm network; a partitioned
    // network keeps its thread pool and partitions across `reset(seed)`, so
    // a warm partitioned simulation must reproduce a cold *serial* one
    // exactly — the property that lets `--jobs` and `--step-threads`
    // compose without changing a single measured number.
    let config = NocConfig::proposed_chip()
        .unwrap()
        .with_seed_mode(SeedMode::PerNode);
    let mut warm = Simulation::new(config)
        .expect("valid configuration")
        .with_step_threads(4)
        .expect("valid thread count");
    for (seed, rate) in [(0x0101u64, 0.04), (0xBEEF, 0.14), (0x7A5A, 0.24)] {
        warm.reset(seed);
        let warm_result = warm.run(rate, 150, 600).expect("valid rate");
        let cold_result = run_once(config.with_base_seed(seed as u16), rate);
        assert_eq!(
            warm_result, cold_result,
            "seed {seed:#x} rate {rate} diverged warm-partitioned vs cold-serial"
        );
    }
}

#[test]
fn serving_sweep_is_bit_identical_across_jobs_and_step_threads() {
    // The closed-loop serving runner composes both parallel axes — point
    // sharding across worker threads (`jobs`) and row-strip partitioned
    // stepping inside each worker (`step_threads`). Neither axis, nor their
    // product, may move a single measured bit relative to the fully serial
    // run: the CI canary and the golden pins below depend on it.
    let config = NocConfig::proposed_chip().unwrap();
    let populations = [2usize, 6, 16, 40];
    let run = |jobs: usize, step_threads: usize| -> Vec<ServingResult> {
        ServingRunner::new(jobs)
            .with_windows(100, 400)
            .unwrap()
            .with_step_threads(step_threads)
            .unwrap()
            .run(config, &populations)
            .unwrap()
            .points
            .into_iter()
            .map(|p| p.result)
            .collect()
    };
    let serial = run(1, 1);
    assert_eq!(serial.len(), populations.len());
    for (jobs, step_threads) in [(2, 1), (4, 1), (1, 2), (1, 4), (3, 2)] {
        let threaded = run(jobs, step_threads);
        assert_eq!(
            serial, threaded,
            "serving diverged at jobs={jobs} step_threads={step_threads}"
        );
        // The rendered form pins byte-for-byte float identity.
        assert_eq!(
            format!("{serial:?}"),
            format!("{threaded:?}"),
            "serving debug output diverged at jobs={jobs} step_threads={step_threads}"
        );
    }
}

#[test]
fn nic_idle_skip_is_bit_identical_to_serial_injection() {
    // The quiescent-NIC nap (scout the PRBS coin run, sleep, replay the
    // skipped flips on wake) is a pure scheduling shortcut: with the chicken
    // bit off, every NIC flips its coin serially each cycle. Both modes must
    // produce the same traffic bit for bit — including across drain phases
    // with injection off and a mid-run rate change, which force the
    // wake/catch-up paths.
    for (mix, rate) in [
        (TrafficMix::default(), 0.03),
        (TrafficMix::unicast_only(), 0.18),
        (TrafficMix::broadcast_only(), 0.02),
    ] {
        let config = NocConfig::proposed_chip()
            .unwrap()
            .with_mix(mix)
            .with_seed_mode(SeedMode::PerNode);
        let mut napping = Network::new(config, rate).expect("valid configuration");
        let mut serial = Network::new(config, rate).expect("valid configuration");
        serial.set_nic_idle_skip(false);
        napping.set_measuring(true);
        serial.set_measuring(true);

        // Interleave inject and drain phases, changing the rate mid-run.
        let phases = [(250usize, true), (60, false), (120, true), (40, false)];
        for (round, (steps, inject)) in phases.into_iter().enumerate() {
            for _ in 0..steps {
                napping.step(inject);
                serial.step(inject);
                assert_eq!(
                    napping.in_flight_flits(),
                    serial.in_flight_flits(),
                    "in-flight flits diverged ({mix:?}, round {round})"
                );
            }
            assert_eq!(
                napping.injected_packets(),
                serial.injected_packets(),
                "injection streams diverged ({mix:?}, round {round})"
            );
            if round == 1 {
                napping.set_rate(rate * 3.0);
                serial.set_rate(rate * 3.0);
            }
        }
        assert_eq!(
            napping.counters(),
            serial.counters(),
            "activity counters diverged ({mix:?})"
        );
        assert_eq!(
            format!("{:?}", napping.latency()),
            format!("{:?}", serial.latency()),
            "latency statistics diverged ({mix:?})"
        );
        assert_eq!(
            format!("{:?}", napping.throughput()),
            format!("{:?}", serial.throughput()),
            "throughput statistics diverged ({mix:?})"
        );
    }
}
