#!/usr/bin/env bash
# Fails when a markdown file contains a relative link to a path that does
# not exist. Pure grep/sed — no network access, no extra dependencies.
#
# Usage: tools/check_links.sh FILE.md [FILE.md ...]
set -euo pipefail

if [ "$#" -eq 0 ]; then
    echo "usage: $0 FILE.md [FILE.md ...]" >&2
    exit 2
fi

status=0
for file in "$@"; do
    if [ ! -f "$file" ]; then
        echo "missing file: $file" >&2
        status=1
        continue
    fi
    dir=$(dirname "$file")
    # Extract every inline-link target `](target)`, then keep only the
    # relative ones (no scheme, no pure intra-page anchor).
    while IFS= read -r target; do
        target=${target%%#*} # drop an anchor suffix
        [ -z "$target" ] && continue
        case "$target" in
        http://* | https://* | mailto:*) continue ;;
        esac
        if [ ! -e "$dir/$target" ]; then
            echo "$file: broken relative link -> $target" >&2
            status=1
        fi
    done < <(grep -o ']([^)]*)' "$file" | sed 's/^](//;s/)$//' || true)
done

if [ "$status" -eq 0 ]; then
    echo "all relative links resolve"
fi
exit "$status"
