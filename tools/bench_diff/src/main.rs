//! CI perf gate: diffs bench JSON artifacts against a committed baseline.
//!
//! The workspace emits two kinds of machine-readable bench artifacts:
//!
//! * **Sweep documents** (`BENCH_sweep.json`, `BENCH_patterns.json`,
//!   `BENCH_stress8.json`, `BENCH_stress16.json`) written by `repro --json`:
//!   `{"sweeps": [...]}` with one record per `(experiment, network, k)`
//!   sweep.
//! * **Step documents** written by the criterion shim when `NOC_BENCH_JSON`
//!   is set: `{"schema": 1, "results": [{"id", "mean_ns", "samples"}]}`.
//!
//! `bench_diff check` extracts a flat metric set from those files, compares
//! it against `tools/bench_baseline.json`, prints a markdown trend table
//! (also appended to `$GITHUB_STEP_SUMMARY` when set), and exits non-zero if
//! any pinned metric regressed beyond its tolerance or disappeared.
//! `bench_diff write-baseline` regenerates the baseline from the same
//! artifacts — run it locally after deliberate perf changes.
//!
//! The build environment has no `serde_json`, so a ~100-line recursive
//! descent parser below handles the three fixed document shapes.

use std::fmt::Write as _;
use std::process::ExitCode;

// --------------------------------------------------------------------- JSON

/// A parsed JSON value (number precision is `f64`, ample for bench data).
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Recursive-descent JSON parser over the byte positions of `src`.
struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn parse(src: &'a str) -> Result<Json, String> {
        let mut p = Parser {
            src: src.as_bytes(),
            pos: 0,
        };
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.src.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(value)
    }

    fn skip_ws(&mut self) {
        while self.pos < self.src.len() && self.src[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                byte as char,
                self.pos,
                self.peek().map(|b| b as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.src[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Json::Str),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".to_owned()),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_owned()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex = self
                                .src
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte sequences are
                    // copied byte-for-byte; `src` came from a valid &str).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.src.len() && (self.src[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.src[start..self.pos])
                            .map_err(|e| e.to_string())?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.src[start..self.pos])
            .map_err(|e| e.to_string())?
            .parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number at byte {start}"))
    }
}

// ------------------------------------------------------------------ metrics

/// One comparable scalar extracted from a bench artifact.
#[derive(Debug, Clone, PartialEq)]
struct Metric {
    /// Stable id, e.g. `bench_step/step_8x8_saturated_mixed` or
    /// `fig5/proposed/k4/saturation_gbps`.
    id: String,
    value: f64,
    /// `true` for throughput-like metrics where bigger numbers are better.
    higher_is_better: bool,
    /// Mesh-partition threads the workload stepped with, when the artifact
    /// says (the `step_threads` sweep field, or a `_<N>t` bench-id suffix).
    /// Purely an annotation for the trend table; never compared.
    step_threads: Option<u64>,
}

/// Parses the `_<N>t` thread-count suffix convention of partitioned step
/// benches (`step_8x8_saturated_mixed_2t` → 2). Ids without the suffix are
/// the serial variants.
fn id_thread_suffix(id: &str) -> Option<u64> {
    let digits = &id.strip_suffix('t')?[..id.len() - 1];
    let digits = &digits[digits.rfind('_')? + 1..];
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// Extracts `bench_step/<id>` metrics (mean ns/iter, lower is better) from a
/// criterion-shim `NOC_BENCH_JSON` document.
fn step_metrics(doc: &Json) -> Result<Vec<Metric>, String> {
    let results = doc
        .get("results")
        .and_then(Json::as_arr)
        .ok_or("step document has no \"results\" array")?;
    let mut metrics = Vec::new();
    for entry in results {
        let id = entry
            .get("id")
            .and_then(Json::as_str)
            .ok_or("step result missing \"id\"")?;
        let mean_ns = entry
            .get("mean_ns")
            .and_then(Json::as_num)
            .ok_or("step result missing \"mean_ns\"")?;
        metrics.push(Metric {
            id: format!("bench_step/{id}"),
            value: mean_ns,
            higher_is_better: false,
            step_threads: Some(id_thread_suffix(id).unwrap_or(1)),
        });
    }
    Ok(metrics)
}

/// Extracts per-sweep curve metrics from a `repro --json` document:
/// `<experiment>/<network>/k<k>/zero_load_latency_cycles` (lower is better)
/// and `.../saturation_gbps` (higher is better). Non-finite curve fields
/// (serialised as `null`) are skipped.
fn sweep_metrics(doc: &Json) -> Result<Vec<Metric>, String> {
    let sweeps = doc
        .get("sweeps")
        .and_then(Json::as_arr)
        .ok_or("sweep document has no \"sweeps\" array")?;
    let mut metrics = Vec::new();
    for sweep in sweeps {
        let experiment = sweep
            .get("experiment")
            .and_then(Json::as_str)
            .ok_or("sweep missing \"experiment\"")?;
        let network = sweep
            .get("network")
            .and_then(Json::as_str)
            .ok_or("sweep missing \"network\"")?;
        let k = sweep
            .get("k")
            .and_then(Json::as_num)
            .ok_or("sweep missing \"k\"")?;
        let prefix = format!("{experiment}/{network}/k{k}");
        let step_threads = sweep
            .get("step_threads")
            .and_then(Json::as_num)
            .map(|n| n as u64);
        for (field, higher_is_better) in [
            ("zero_load_latency_cycles", false),
            ("saturation_gbps", true),
        ] {
            if let Some(value) = sweep.get(field).and_then(Json::as_num) {
                metrics.push(Metric {
                    id: format!("{prefix}/{field}"),
                    value,
                    higher_is_better,
                    step_threads,
                });
            }
        }
    }
    Ok(metrics)
}

// ----------------------------------------------------------------- baseline

/// A pinned metric from `tools/bench_baseline.json`.
#[derive(Debug, Clone)]
struct BaselineEntry {
    id: String,
    value: f64,
    higher_is_better: bool,
    /// Per-entry override of the document-level tolerance.
    tolerance_pct: Option<f64>,
}

#[derive(Debug, Clone)]
struct Baseline {
    tolerance_pct: f64,
    entries: Vec<BaselineEntry>,
}

/// Default regression tolerance when the baseline document does not name one.
const DEFAULT_TOLERANCE_PCT: f64 = 15.0;

fn parse_baseline(doc: &Json) -> Result<Baseline, String> {
    let tolerance_pct = doc
        .get("tolerance_pct")
        .and_then(Json::as_num)
        .unwrap_or(DEFAULT_TOLERANCE_PCT);
    let raw = doc
        .get("entries")
        .and_then(Json::as_arr)
        .ok_or("baseline has no \"entries\" array")?;
    let mut entries = Vec::new();
    for entry in raw {
        entries.push(BaselineEntry {
            id: entry
                .get("id")
                .and_then(Json::as_str)
                .ok_or("baseline entry missing \"id\"")?
                .to_owned(),
            value: entry
                .get("value")
                .and_then(Json::as_num)
                .ok_or("baseline entry missing \"value\"")?,
            higher_is_better: matches!(entry.get("higher_is_better"), Some(Json::Bool(true))),
            tolerance_pct: entry.get("tolerance_pct").and_then(Json::as_num),
        });
    }
    Ok(Baseline {
        tolerance_pct,
        entries,
    })
}

fn render_baseline(tolerance_pct: f64, metrics: &[Metric]) -> String {
    let mut out = String::from("{\n  \"schema\": 1,\n");
    let _ = writeln!(out, "  \"tolerance_pct\": {tolerance_pct},");
    out.push_str("  \"entries\": [\n");
    for (i, m) in metrics.iter().enumerate() {
        let sep = if i + 1 == metrics.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{ \"id\": \"{}\", \"value\": {:.3}, \"higher_is_better\": {} }}{sep}",
            m.id, m.value, m.higher_is_better
        );
    }
    out.push_str("  ]\n}\n");
    out
}

// --------------------------------------------------------------- comparison

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Verdict {
    Ok,
    Improved,
    Regressed,
    Missing,
}

#[derive(Debug, Clone)]
struct Row {
    id: String,
    /// Thread-count annotation for the table (see [`Metric::step_threads`]).
    step_threads: Option<u64>,
    baseline: f64,
    current: Option<f64>,
    delta_pct: Option<f64>,
    tolerance_pct: f64,
    verdict: Verdict,
}

/// Compares `current` metrics against the pinned baseline. Metrics present
/// in the current run but absent from the baseline are ignored (they become
/// pinned on the next `write-baseline`).
fn compare(baseline: &Baseline, current: &[Metric]) -> Vec<Row> {
    baseline
        .entries
        .iter()
        .map(|pin| {
            let tolerance_pct = pin.tolerance_pct.unwrap_or(baseline.tolerance_pct);
            let Some(metric) = current.iter().find(|m| m.id == pin.id) else {
                return Row {
                    id: pin.id.clone(),
                    step_threads: id_thread_suffix(&pin.id),
                    baseline: pin.value,
                    current: None,
                    delta_pct: None,
                    tolerance_pct,
                    verdict: Verdict::Missing,
                };
            };
            let delta_pct = if pin.value == 0.0 {
                if metric.value == 0.0 {
                    0.0
                } else {
                    f64::INFINITY
                }
            } else {
                (metric.value - pin.value) / pin.value * 100.0
            };
            // Positive `worse` always means "got worse", whichever direction
            // the metric prefers.
            let worse = if pin.higher_is_better {
                -delta_pct
            } else {
                delta_pct
            };
            let verdict = if worse > tolerance_pct {
                Verdict::Regressed
            } else if worse < -tolerance_pct {
                Verdict::Improved
            } else {
                Verdict::Ok
            };
            Row {
                id: pin.id.clone(),
                step_threads: metric.step_threads,
                baseline: pin.value,
                current: Some(metric.value),
                delta_pct: Some(delta_pct),
                tolerance_pct,
                verdict,
            }
        })
        .collect()
}

fn render_table(rows: &[Row]) -> String {
    let mut out = String::from("## Bench trend vs committed baseline\n\n");
    out.push_str("| metric | threads | baseline | current | Δ | verdict |\n");
    out.push_str("|---|---:|---:|---:|---:|---|\n");
    for row in rows {
        let threads = row
            .step_threads
            .map_or_else(|| "—".to_owned(), |t| t.to_string());
        let current = row
            .current
            .map_or_else(|| "—".to_owned(), |v| format!("{v:.1}"));
        let delta = row
            .delta_pct
            .map_or_else(|| "—".to_owned(), |d| format!("{d:+.1}%"));
        let verdict = match row.verdict {
            Verdict::Ok => "ok".to_owned(),
            Verdict::Improved => "**improved** 🎉".to_owned(),
            Verdict::Regressed => format!("**REGRESSED** (>±{}%) ❌", row.tolerance_pct),
            Verdict::Missing => "**MISSING** ❌".to_owned(),
        };
        let _ = writeln!(
            out,
            "| `{}` | {threads} | {:.1} | {current} | {delta} | {verdict} |",
            row.id, row.baseline
        );
    }
    out
}

// ---------------------------------------------------------------------- CLI

#[derive(Debug, Default)]
struct Args {
    baseline: Option<String>,
    step: Vec<String>,
    sweep: Vec<String>,
    summary: Option<String>,
}

const USAGE: &str = "\
usage:
  bench_diff check --baseline FILE [--step FILE]... [--sweep FILE]... [--summary FILE]
  bench_diff write-baseline --baseline FILE [--step FILE]... [--sweep FILE]...

Artifacts: --step takes a criterion-shim NOC_BENCH_JSON document, --sweep a
repro --json document (BENCH_sweep.json / BENCH_patterns.json /
BENCH_stress8.json / BENCH_stress16.json). `check` appends its trend table to --summary and to
$GITHUB_STEP_SUMMARY when set, and exits 1 if a pinned metric regressed
beyond tolerance or is missing.";

fn parse_args(mut argv: impl Iterator<Item = String>) -> Result<(String, Args), String> {
    let command = argv.next().ok_or(USAGE)?;
    let mut args = Args::default();
    while let Some(flag) = argv.next() {
        let mut value = || argv.next().ok_or(format!("{flag} needs a value"));
        match flag.as_str() {
            "--baseline" => args.baseline = Some(value()?),
            "--step" => args.step.push(value()?),
            "--sweep" => args.sweep.push(value()?),
            "--summary" => args.summary = Some(value()?),
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    Ok((command, args))
}

fn load(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    Parser::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn collect_metrics(args: &Args) -> Result<Vec<Metric>, String> {
    let mut metrics = Vec::new();
    for path in &args.step {
        metrics.extend(step_metrics(&load(path)?)?);
    }
    for path in &args.sweep {
        metrics.extend(sweep_metrics(&load(path)?)?);
    }
    Ok(metrics)
}

fn run() -> Result<bool, String> {
    let (command, args) = parse_args(std::env::args().skip(1))?;
    let baseline_path = args.baseline.as_deref().ok_or("--baseline is required")?;
    let metrics = collect_metrics(&args)?;
    match command.as_str() {
        "write-baseline" => {
            if metrics.is_empty() {
                return Err("refusing to write an empty baseline (no artifacts given)".into());
            }
            std::fs::write(
                baseline_path,
                render_baseline(DEFAULT_TOLERANCE_PCT, &metrics),
            )
            .map_err(|e| format!("{baseline_path}: {e}"))?;
            println!("wrote {} entries to {baseline_path}", metrics.len());
            Ok(true)
        }
        "check" => {
            let baseline = parse_baseline(&load(baseline_path)?)?;
            let rows = compare(&baseline, &metrics);
            let table = render_table(&rows);
            print!("{table}");
            let summary_targets = args.summary.clone().into_iter().chain(
                std::env::var("GITHUB_STEP_SUMMARY")
                    .ok()
                    .filter(|p| !p.is_empty()),
            );
            for path in summary_targets {
                use std::io::Write as _;
                std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(&path)
                    .and_then(|mut f| f.write_all(table.as_bytes()))
                    .map_err(|e| format!("{path}: {e}"))?;
            }
            let failures = rows
                .iter()
                .filter(|r| matches!(r.verdict, Verdict::Regressed | Verdict::Missing))
                .count();
            if failures > 0 {
                eprintln!("bench_diff: {failures} pinned metric(s) regressed or went missing");
            }
            Ok(failures == 0)
        }
        other => Err(format!("unknown command {other}\n{USAGE}")),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(message) => {
            eprintln!("bench_diff: {message}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const STEP_DOC: &str = r#"{
      "schema": 1,
      "results": [
        { "id": "step_8x8_saturated_mixed", "mean_ns": 67018.4, "samples": 20 },
        { "id": "step_8x8_saturated_mixed_2t", "mean_ns": 71003.9, "samples": 20 },
        { "id": "step_8x8_drain_idle", "mean_ns": 21.0, "samples": 20 }
      ]
    }"#;

    const SWEEP_DOC: &str = r#"{
      "sweeps": [
        {
          "experiment": "fig5", "network": "proposed", "k": 4, "jobs": 2,
          "step_threads": 2,
          "zero_load_latency_cycles": 8.25, "saturation_gbps": 890.0,
          "saturation_rate": 0.24, "total_wall_ms": 12.0, "points": []
        }
      ]
    }"#;

    #[test]
    fn parser_roundtrips_the_step_document() {
        let doc = Parser::parse(STEP_DOC).unwrap();
        let metrics = step_metrics(&doc).unwrap();
        assert_eq!(metrics.len(), 3);
        assert_eq!(metrics[0].id, "bench_step/step_8x8_saturated_mixed");
        assert_eq!(metrics[0].value, 67018.4);
        assert!(!metrics[0].higher_is_better);
    }

    #[test]
    fn step_thread_counts_come_from_the_id_suffix() {
        let doc = Parser::parse(STEP_DOC).unwrap();
        let metrics = step_metrics(&doc).unwrap();
        assert_eq!(metrics[0].step_threads, Some(1), "no suffix means serial");
        assert_eq!(metrics[1].step_threads, Some(2));
        assert_eq!(id_thread_suffix("step_16x16_saturated_mixed"), None);
        assert_eq!(id_thread_suffix("step_8x8_saturated_mixed_12t"), Some(12));
        assert_eq!(id_thread_suffix("step_8x8_t"), None);
        assert_eq!(id_thread_suffix("t"), None);
    }

    #[test]
    fn parser_handles_escapes_and_nesting() {
        let doc = Parser::parse(r#"{"a": [1, -2.5e1, "x\"\\A", null, true]}"#).unwrap();
        let arr = doc.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[1], Json::Num(-25.0));
        assert_eq!(arr[2], Json::Str("x\"\\A".to_owned()));
        assert_eq!(arr[3], Json::Null);
    }

    #[test]
    fn parser_rejects_trailing_garbage() {
        assert!(Parser::parse("{} junk").is_err());
        assert!(Parser::parse("{\"a\": }").is_err());
    }

    #[test]
    fn sweep_metrics_build_curve_ids() {
        let doc = Parser::parse(SWEEP_DOC).unwrap();
        let metrics = sweep_metrics(&doc).unwrap();
        let ids: Vec<&str> = metrics.iter().map(|m| m.id.as_str()).collect();
        assert_eq!(
            ids,
            [
                "fig5/proposed/k4/zero_load_latency_cycles",
                "fig5/proposed/k4/saturation_gbps"
            ]
        );
        assert!(metrics[1].higher_is_better);
        assert_eq!(
            metrics[0].step_threads,
            Some(2),
            "sweep records carry their step_threads field into the annotation"
        );
    }

    #[test]
    fn null_curve_fields_are_skipped() {
        let doc = Parser::parse(
            r#"{"sweeps": [{"experiment": "e", "network": "n", "k": 8,
                "zero_load_latency_cycles": null, "saturation_gbps": 1.0}]}"#,
        )
        .unwrap();
        let metrics = sweep_metrics(&doc).unwrap();
        assert_eq!(metrics.len(), 1);
        assert_eq!(metrics[0].id, "e/n/k8/saturation_gbps");
    }

    fn pin(id: &str, value: f64, higher_is_better: bool) -> BaselineEntry {
        BaselineEntry {
            id: id.to_owned(),
            value,
            higher_is_better,
            tolerance_pct: None,
        }
    }

    fn metric(id: &str, value: f64, higher_is_better: bool) -> Metric {
        Metric {
            id: id.to_owned(),
            value,
            higher_is_better,
            step_threads: None,
        }
    }

    #[test]
    fn regression_beyond_tolerance_fails_lower_is_better() {
        let baseline = Baseline {
            tolerance_pct: 15.0,
            entries: vec![pin("bench_step/x", 100.0, false)],
        };
        let ok = compare(&baseline, &[metric("bench_step/x", 114.0, false)]);
        assert_eq!(ok[0].verdict, Verdict::Ok);
        let bad = compare(&baseline, &[metric("bench_step/x", 116.0, false)]);
        assert_eq!(bad[0].verdict, Verdict::Regressed);
    }

    #[test]
    fn regression_direction_flips_for_higher_is_better() {
        let baseline = Baseline {
            tolerance_pct: 15.0,
            entries: vec![pin("e/n/k4/saturation_gbps", 800.0, true)],
        };
        let bad = compare(&baseline, &[metric("e/n/k4/saturation_gbps", 600.0, true)]);
        assert_eq!(bad[0].verdict, Verdict::Regressed);
        let good = compare(&baseline, &[metric("e/n/k4/saturation_gbps", 950.0, true)]);
        assert_eq!(good[0].verdict, Verdict::Improved);
    }

    #[test]
    fn missing_pinned_metric_is_a_failure() {
        let baseline = Baseline {
            tolerance_pct: 15.0,
            entries: vec![pin("bench_step/gone", 10.0, false)],
        };
        let rows = compare(&baseline, &[]);
        assert_eq!(rows[0].verdict, Verdict::Missing);
        assert!(render_table(&rows).contains("MISSING"));
    }

    #[test]
    fn per_entry_tolerance_overrides_document_tolerance() {
        let mut entry = pin("bench_step/x", 100.0, false);
        entry.tolerance_pct = Some(50.0);
        let baseline = Baseline {
            tolerance_pct: 15.0,
            entries: vec![entry],
        };
        let rows = compare(&baseline, &[metric("bench_step/x", 140.0, false)]);
        assert_eq!(rows[0].verdict, Verdict::Ok);
    }

    #[test]
    fn trend_table_annotates_thread_counts() {
        let baseline = Baseline {
            tolerance_pct: 15.0,
            entries: vec![pin("bench_step/step_8x8_saturated_mixed_2t", 100.0, false)],
        };
        let mut m = metric("bench_step/step_8x8_saturated_mixed_2t", 101.0, false);
        m.step_threads = Some(2);
        let table = render_table(&compare(&baseline, &[m]));
        assert!(table.contains("| metric | threads |"));
        assert!(table.contains("| 2 | 100.0 | 101.0 |"));
        // A missing pin still gets its thread count from the id suffix.
        let missing = render_table(&compare(&baseline, &[]));
        assert!(missing.contains("| 2 | 100.0 | — |"));
    }

    #[test]
    fn baseline_roundtrips_through_render_and_parse() {
        let metrics = vec![
            metric("bench_step/a", 123.456, false),
            metric("e/n/k4/saturation_gbps", 890.0, true),
        ];
        let text = render_baseline(15.0, &metrics);
        let baseline = parse_baseline(&Parser::parse(&text).unwrap()).unwrap();
        assert_eq!(baseline.tolerance_pct, 15.0);
        assert_eq!(baseline.entries.len(), 2);
        assert_eq!(baseline.entries[0].id, "bench_step/a");
        assert!(baseline.entries[1].higher_is_better);
    }
}
