//! `noc-lint` — the workspace determinism & unsafety static-analysis gate.
//!
//! The determinism contract (partitioned, sharded, napped, warm-reset and
//! replayed runs are bit-identical) is enforced dynamically by
//! `tests/determinism.rs` and the golden suites — but a dynamic test only
//! catches a hazard after someone writes the test that trips it. This tool
//! makes the contract machine-checked at the source level: it walks every
//! `.rs` file under `crates/`, `src/`, `tests/` and `examples/` and enforces
//! the typed rule set in [`rules`] (D-rules for determinism, U-rules for
//! unsafety, R-rules for registry/docs/baseline drift).
//!
//! ```text
//! noc-lint check [--root DIR] [--config FILE] [--summary FILE] [PATH…]
//! noc-lint rules
//! ```
//!
//! With no `PATH` arguments `check` scans the workspace rooted at `--root`
//! (default: the repo containing this tool) and runs every rule; with
//! explicit paths it runs the file-local D/U rules on just those files —
//! used by the testdata corpus and for spot checks. Exceptions live in
//! `tools/noc_lint.toml` as per-site `file:line` waivers with mandatory
//! justifications (see [`config`]). Like `tools/bench_diff`, the report is a
//! markdown table printed to stdout and appended to `$GITHUB_STEP_SUMMARY`
//! when set; the exit code is 1 when any unwaived finding (or stale waiver)
//! remains, 2 on usage/config errors.

mod config;
mod lexer;
mod rules;

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use rules::Finding;

/// Workspace directories the gate walks (repo-relative).
const SCAN_ROOTS: &[&str] = &["crates", "src", "tests", "examples"];

/// Repo-relative path of the waiver/allowlist config.
const CONFIG_PATH: &str = "tools/noc_lint.toml";

/// Repo-relative path of the experiment registry (R01/R02 input).
const REGISTRY_PATH: &str = "crates/bench/src/registry.rs";

/// Repo-relative path of the README (R01 target).
const README_PATH: &str = "README.md";

/// Repo-relative path of the bench baseline (R02 input).
const BASELINE_PATH: &str = "tools/bench_baseline.json";

const USAGE: &str = "\
usage:
  noc-lint check [--root DIR] [--config FILE] [--summary FILE] [PATH...]
  noc-lint rules

`check` with no PATH arguments scans crates/, src/, tests/ and examples/
under --root (default: this repo) with the full D/U/R rule set; with PATHs
it runs the file-local D/U rules on those files/directories only. The
markdown finding table goes to stdout, --summary and $GITHUB_STEP_SUMMARY;
exit 1 on any unwaived finding, 2 on usage/config errors.";

#[derive(Debug, Default)]
struct Args {
    root: Option<String>,
    config: Option<String>,
    summary: Option<String>,
    paths: Vec<String>,
}

fn parse_args(mut argv: impl Iterator<Item = String>) -> Result<(String, Args), String> {
    let command = argv.next().ok_or(USAGE)?;
    let mut args = Args::default();
    while let Some(flag) = argv.next() {
        let mut value = || argv.next().ok_or(format!("{flag} needs a value"));
        match flag.as_str() {
            "--root" => args.root = Some(value()?),
            "--config" => args.config = Some(value()?),
            "--summary" => args.summary = Some(value()?),
            other if other.starts_with("--") => {
                return Err(format!("unknown flag {other}\n{USAGE}"))
            }
            path => args.paths.push(path.to_owned()),
        }
    }
    Ok((command, args))
}

/// The repo root this binary was built in: `tools/noc-lint/../..`.
fn default_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("tools/noc-lint sits two levels below the repo root")
        .to_path_buf()
}

/// Recursively collects `.rs` files under `dir`, sorted for a deterministic
/// report order.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("{}: {e}", dir.display()))?
        .map(|entry| entry.map(|e| e.path()))
        .collect::<Result<_, _>>()
        .map_err(|e| format!("{}: {e}", dir.display()))?;
    entries.sort();
    for path in entries {
        if path.is_dir() {
            // `target/` never holds sources we own.
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|ext| ext == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Repo-relative, forward-slash form of `path` for findings and waivers.
fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

fn read(path: &Path) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))
}

fn run_check(args: &Args) -> Result<bool, String> {
    let root = args.root.as_ref().map_or_else(default_root, PathBuf::from);
    let config_path = args
        .config
        .as_ref()
        .map_or_else(|| root.join(CONFIG_PATH), PathBuf::from);
    let config = config::parse(&read(&config_path)?)
        .map_err(|e| format!("{}: {e}", config_path.display()))?;

    // Allowlisted files must exist: a rename would otherwise silently widen
    // the exemption to nothing while the moved code loses its waiver.
    for (rule, files) in &config.allow_files {
        for file in files {
            if !root.join(file).is_file() {
                return Err(format!(
                    "{}: [allow.{rule}] names missing file {file}",
                    config_path.display()
                ));
            }
        }
    }

    let workspace_mode = args.paths.is_empty();
    let mut sources = Vec::new();
    if workspace_mode {
        for scan_root in SCAN_ROOTS {
            let dir = root.join(scan_root);
            if dir.is_dir() {
                collect_rs_files(&dir, &mut sources)?;
            }
        }
    } else {
        for path in &args.paths {
            let path = PathBuf::from(path);
            if path.is_dir() {
                collect_rs_files(&path, &mut sources)?;
            } else {
                sources.push(path);
            }
        }
    }

    let mut findings = Vec::new();
    for path in &sources {
        let rel = rel_path(&root, path);
        findings.extend(rules::check_file(&rel, &read(path)?, &config));
    }

    if workspace_mode {
        let ids = rules::registry_ids(&read(&root.join(REGISTRY_PATH))?);
        if ids.is_empty() {
            return Err(format!(
                "{REGISTRY_PATH}: found no `id: \"…\"` experiment entries — registry moved?"
            ));
        }
        findings.extend(rules::check_readme_mentions(
            REGISTRY_PATH,
            &ids,
            &read(&root.join(README_PATH))?,
        ));
        findings.extend(rules::check_baseline_pins(
            BASELINE_PATH,
            &read(&root.join(BASELINE_PATH))?,
            &ids,
            &config,
        ));
    }

    let stale = rules::apply_waivers(&mut findings, &config);
    findings.extend(stale);
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));

    let violations = findings.iter().filter(|f| f.waived.is_none()).count();
    let waived = findings.len() - violations;
    let table = render_table(&findings, violations, waived, sources.len());
    print!("{table}");

    let summary_targets = args.summary.clone().into_iter().chain(
        std::env::var("GITHUB_STEP_SUMMARY")
            .ok()
            .filter(|p| !p.is_empty()),
    );
    for path in summary_targets {
        use std::io::Write as _;
        std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .and_then(|mut f| f.write_all(table.as_bytes()))
            .map_err(|e| format!("{path}: {e}"))?;
    }

    if violations > 0 {
        eprintln!("noc-lint: {violations} unwaived finding(s)");
    }
    Ok(violations == 0)
}

fn render_table(findings: &[Finding], violations: usize, waived: usize, scanned: usize) -> String {
    let mut out = String::from("## noc-lint: determinism & unsafety gate\n\n");
    if findings.is_empty() {
        let _ = writeln!(
            out,
            "No findings across {scanned} source file(s) — the determinism and unsafety \
             contracts hold at the source level.\n"
        );
        return out;
    }
    let _ = writeln!(
        out,
        "{violations} violation(s), {waived} waived exception(s) across {scanned} source \
         file(s).\n"
    );
    out.push_str("| rule | site | finding | status |\n|---|---|---|---|\n");
    for f in findings {
        let status = match &f.waived {
            Some(justification) => format!("waived: {justification}"),
            None => "**VIOLATION** ❌".to_owned(),
        };
        let _ = writeln!(
            out,
            "| {} | `{}:{}` | {} | {} |",
            f.rule, f.file, f.line, f.message, status
        );
    }
    out.push('\n');
    out
}

fn render_rules() -> String {
    let mut out = String::from("noc-lint rule set:\n");
    for rule in rules::RULES {
        let _ = writeln!(out, "  {:4} {}", rule.id, rule.summary);
    }
    out.push_str("\nWaivers: tools/noc_lint.toml, per-site file:line anchors with mandatory\njustifications. See ARCHITECTURE.md \"Static analysis and the determinism\ncontract\".\n");
    out
}

fn main() -> ExitCode {
    let (command, args) = match parse_args(std::env::args().skip(1)) {
        Ok(parsed) => parsed,
        Err(message) => {
            eprintln!("noc-lint: {message}");
            return ExitCode::from(2);
        }
    };
    match command.as_str() {
        "rules" => {
            print!("{}", render_rules());
            ExitCode::SUCCESS
        }
        "check" => match run_check(&args) {
            Ok(true) => ExitCode::SUCCESS,
            Ok(false) => ExitCode::FAILURE,
            Err(message) => {
                eprintln!("noc-lint: {message}");
                ExitCode::from(2)
            }
        },
        other => {
            eprintln!("noc-lint: unknown command {other}\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The testdata corpus: each snippet must trip its rule exactly once.
    /// (`u01_missing_safety.rs` also trips U02 by construction — `unsafe`
    /// outside the allowlist — so the assertion filters by rule id.)
    #[test]
    fn testdata_corpus_fires_each_rule_exactly_once() {
        let corpus = [
            ("testdata/d01_hashmap.rs", "D01"),
            ("testdata/d02_instant.rs", "D02"),
            ("testdata/d03_thread_rng.rs", "D03"),
            ("testdata/d04_thread_spawn.rs", "D04"),
            ("testdata/d05_env_var.rs", "D05"),
            ("testdata/u01_missing_safety.rs", "U01"),
            ("testdata/u02_unsafe_outside_allowlist.rs", "U02"),
        ];
        let config = config::Config::default();
        for (path, rule) in corpus {
            let full = Path::new(env!("CARGO_MANIFEST_DIR")).join(path);
            let src = std::fs::read_to_string(&full).expect(path);
            let findings = rules::check_file(path, &src, &config);
            let fired: Vec<_> = findings.iter().filter(|f| f.rule == rule).collect();
            assert_eq!(
                fired.len(),
                1,
                "{path}: expected exactly one {rule} finding, got {findings:?}"
            );
        }
    }

    /// The clean-corpus snippet exercises every lexer escape hatch (strings,
    /// raw strings, comments, cfg(test)) and must produce zero findings.
    #[test]
    fn testdata_clean_snippet_is_finding_free() {
        let full = Path::new(env!("CARGO_MANIFEST_DIR")).join("testdata/clean.rs");
        let src = std::fs::read_to_string(&full).expect("testdata/clean.rs");
        let config = config::Config::default();
        let findings = rules::check_file("testdata/clean.rs", &src, &config);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn render_table_reports_waived_and_violations_distinctly() {
        let findings = vec![
            Finding {
                rule: "D01",
                file: "a.rs".into(),
                line: 3,
                message: "hash map".into(),
                waived: None,
            },
            Finding {
                rule: "D02",
                file: "b.rs".into(),
                line: 7,
                message: "instant".into(),
                waived: Some("reporting only".into()),
            },
        ];
        let table = render_table(&findings, 1, 1, 2);
        assert!(table.contains("**VIOLATION**"));
        assert!(table.contains("waived: reporting only"));
        assert!(table.contains("`a.rs:3`"));
    }

    #[test]
    fn args_accept_flags_and_paths() {
        let (command, args) = parse_args(
            ["check", "--root", "/r", "--summary", "/s", "x.rs", "y/"]
                .into_iter()
                .map(String::from),
        )
        .unwrap();
        assert_eq!(command, "check");
        assert_eq!(args.root.as_deref(), Some("/r"));
        assert_eq!(args.summary.as_deref(), Some("/s"));
        assert_eq!(args.paths, ["x.rs", "y/"]);
        assert!(parse_args(["check", "--bogus"].into_iter().map(String::from)).is_err());
    }
}
