//! The typed rule set: D (determinism), U (unsafety), R (registry drift).
//!
//! Every rule fires as a [`Finding`] anchored to a `file:line`. Findings are
//! matched against the waiver table from `tools/noc_lint.toml`; an unwaived
//! finding (or a waiver that no longer matches anything) fails the gate.
//!
//! | rule | contract |
//! |------|----------|
//! | D01  | no `HashMap`/`HashSet`/`RandomState` in non-test simulation code (iteration order would leak into results — use `BTreeMap`/`BTreeSet` or index maps) |
//! | D02  | no `Instant`/`SystemTime`/`std::time` outside waived wall-clock reporting sites |
//! | D03  | no `thread_rng`/ambient randomness (all randomness flows from the seeded LFSR/PRBS layer) |
//! | D04  | no thread spawning outside the allowlisted files (parallelism must go through the partition pool or the sweep runners, which pin merge order) |
//! | D05  | no `std::env` reads outside approved config entry points |
//! | U01  | every `unsafe` block/impl carries a `// SAFETY:` comment |
//! | U02  | `unsafe` only in allowlisted files |
//! | R01  | every `Experiment` registry id appears in `README.md` |
//! | R02  | every `tools/bench_baseline.json` pin maps to a live experiment id |
//!
//! D-rules apply to simulation code only: files under `tests/` and
//! `#[cfg(test)]` regions are exempt (test-local `HashSet`s cannot perturb
//! simulation results). U-rules apply everywhere.

use crate::config::Config;
use crate::lexer::FileLex;

/// One rule violation (or waived exception) at a source site.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule id, e.g. `D01`.
    pub rule: &'static str,
    /// Repo-relative path (forward slashes).
    pub file: String,
    /// 1-indexed line.
    pub line: usize,
    /// Human explanation of the violation.
    pub message: String,
    /// `Some(justification)` when a waiver from the config matched.
    pub waived: Option<String>,
}

/// Static description of one rule, for `noc-lint rules` and the docs table.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Stable id (`D01` … `R02`).
    pub id: &'static str,
    /// One-line contract statement.
    pub summary: &'static str,
}

/// The rule table, in id order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "D01",
        summary: "no HashMap/HashSet/RandomState in non-test simulation code (use BTreeMap/BTreeSet or index maps)",
    },
    RuleInfo {
        id: "D02",
        summary: "no Instant/SystemTime/std::time outside waived wall-clock reporting sites",
    },
    RuleInfo {
        id: "D03",
        summary: "no thread_rng/ambient randomness (randomness flows from the seeded PRBS layer only)",
    },
    RuleInfo {
        id: "D04",
        summary: "no thread spawning outside the allowlisted parallelism layers",
    },
    RuleInfo {
        id: "D05",
        summary: "no std::env reads outside approved config entry points",
    },
    RuleInfo {
        id: "U01",
        summary: "every unsafe block/impl carries a // SAFETY: comment",
    },
    RuleInfo {
        id: "U02",
        summary: "unsafe only in allowlisted files",
    },
    RuleInfo {
        id: "R01",
        summary: "every Experiment registry id appears in README.md",
    },
    RuleInfo {
        id: "R02",
        summary: "every bench_baseline.json pin maps to a live experiment id",
    },
];

/// Identifier-boundary-aware substring search: `needle` (which may contain
/// `::`) must not be flanked by identifier characters in `haystack`.
fn find_word(haystack: &str, needle: &str) -> Option<usize> {
    let is_ident = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
    let bytes = haystack.as_bytes();
    let mut from = 0;
    while let Some(at) = haystack[from..].find(needle) {
        let start = from + at;
        let end = start + needle.len();
        let left_ok = start == 0 || !is_ident(bytes[start - 1]);
        let right_ok = end >= bytes.len() || !is_ident(bytes[end]);
        if left_ok && right_ok {
            return Some(start);
        }
        from = start + 1;
    }
    None
}

/// `#[cfg(test)]`-gated regions of the code view, as inclusive 1-indexed
/// line ranges (the attribute line through the close of the following
/// braced item).
fn cfg_test_regions(code: &str) -> Vec<(usize, usize)> {
    let bytes = code.as_bytes();
    let mut regions = Vec::new();
    let mut search_from = 0usize;
    while let Some(at) = code[search_from..].find("cfg(test)") {
        let attr_at = search_from + at;
        let start_line = 1 + code[..attr_at].bytes().filter(|&b| b == b'\n').count();
        // Find the `{` opening the gated item and match braces to its close.
        let Some(open_rel) = code[attr_at..].find('{') else {
            break;
        };
        let mut i = attr_at + open_rel;
        let mut depth = 0usize;
        let mut line = 1 + code[..i].bytes().filter(|&b| b == b'\n').count();
        let end_line = loop {
            if i >= bytes.len() {
                break line;
            }
            match bytes[i] {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        break line;
                    }
                }
                b'\n' => line += 1,
                _ => {}
            }
            i += 1;
        };
        regions.push((start_line, end_line));
        search_from = i.max(attr_at + 1);
    }
    regions
}

/// D-rule pattern groups: `(rule, patterns, message)`.
const D_PATTERNS: &[(&str, &[&str], &str)] = &[
    (
        "D01",
        &["HashMap", "HashSet", "RandomState"],
        "hash-ordered collection in simulation code; iteration order depends on the hasher and \
         breaks bit-identity — use BTreeMap/BTreeSet or an index map",
    ),
    (
        "D02",
        &["Instant", "SystemTime", "std::time"],
        "wall-clock time in simulation code; results must be a pure function of (config, seed) — \
         waive only pure reporting sites",
    ),
    (
        "D03",
        &["thread_rng", "rand::random", "from_entropy", "getrandom"],
        "ambient randomness; all randomness must flow from the seeded LFSR/PRBS layer",
    ),
    (
        "D04",
        &["thread::spawn", "thread::scope", "thread::Builder"],
        "thread spawning outside the allowlisted parallelism layers; ad-hoc threads bypass the \
         fixed merge order that makes parallel runs bit-identical",
    ),
    (
        "D05",
        &["std::env", "env::var", "env::args", "env::vars", "var_os"],
        "environment read outside the approved config entry points; hidden knobs make runs \
         irreproducible from their recorded config",
    ),
];

/// Runs the file-local D/U rules over one source file.
///
/// `rel_path` is the repo-relative path (forward slashes) used for
/// allowlist/waiver matching and in findings.
#[must_use]
pub fn check_file(rel_path: &str, src: &str, config: &Config) -> Vec<Finding> {
    let lex = FileLex::new(src);
    let code_lines = lex.code_lines();
    let test_regions = cfg_test_regions(lex.code_view());
    let in_test_region = |line: usize| {
        test_regions
            .iter()
            .any(|&(lo, hi)| lo <= line && line <= hi)
    };
    let is_test_file = rel_path.starts_with("tests/");
    let safety_lines: Vec<usize> = lex.comment_lines_containing("SAFETY:");

    let mut findings = Vec::new();
    for (index, line_text) in code_lines.iter().enumerate() {
        let line = index + 1;
        let d_exempt = is_test_file || in_test_region(line);

        if !d_exempt {
            for &(rule, patterns, message) in D_PATTERNS {
                if config.is_allowed(&rule.to_ascii_lowercase(), rel_path) {
                    continue;
                }
                if patterns.iter().any(|p| find_word(line_text, p).is_some()) {
                    findings.push(Finding {
                        rule,
                        file: rel_path.to_owned(),
                        line,
                        message: message.to_owned(),
                        waived: None,
                    });
                }
            }
        }

        // U-rules: apply everywhere, including tests.
        if find_word(line_text, "unsafe").is_some() {
            let documented = has_safety_comment(line, &code_lines, &safety_lines);
            if !documented {
                findings.push(Finding {
                    rule: "U01",
                    file: rel_path.to_owned(),
                    line,
                    message: "unsafe without a `// SAFETY:` comment on the preceding lines"
                        .to_owned(),
                    waived: None,
                });
            }
            if !config.is_allowed("u02", rel_path) {
                findings.push(Finding {
                    rule: "U02",
                    file: rel_path.to_owned(),
                    line,
                    message: "unsafe outside the allowlisted files ([allow.u02] in \
                              tools/noc_lint.toml)"
                        .to_owned(),
                    waived: None,
                });
            }
        }
    }
    findings
}

/// Is there a `SAFETY:` comment attached to the `unsafe` on `line`?
///
/// Accepts a trailing comment on the same line, or a comment in the run of
/// non-code lines (blank, comment-only, attribute) directly above.
fn has_safety_comment(line: usize, code_lines: &[&str], safety_lines: &[usize]) -> bool {
    if safety_lines.contains(&line) {
        return true;
    }
    let mut probe = line;
    while probe > 1 {
        probe -= 1;
        let code = code_lines.get(probe - 1).map_or("", |l| l.trim());
        let non_code = code.is_empty() || code.starts_with("#[");
        if safety_lines.contains(&probe) {
            // Comment-only lines have blank code views, so this line is part
            // of the directly-preceding comment run (or a trailing comment
            // on the nearest code line, which also counts as "attached").
            return true;
        }
        if !non_code {
            return false;
        }
    }
    false
}

/// Extracts the `id: "…"` literals of the `experiments!` registry source.
#[must_use]
pub fn registry_ids(registry_src: &str) -> Vec<(String, usize)> {
    let lex = FileLex::new(registry_src);
    let mut ids = Vec::new();
    let mut prev_code_tail = String::new();
    for span in lex.spans() {
        match span.kind {
            crate::lexer::Kind::Code => {
                prev_code_tail = span.text.trim_end().to_owned();
            }
            crate::lexer::Kind::Literal => {
                let tail: String = prev_code_tail.split_whitespace().collect();
                // `… id:` with an identifier boundary before `id` (so a
                // field named `uid:` never matches).
                let is_id_field = tail.strip_suffix("id:").is_some_and(|rest| {
                    rest.bytes()
                        .next_back()
                        .is_none_or(|b| !b.is_ascii_alphanumeric() && b != b'_')
                });
                if is_id_field {
                    if let Some(id) = span
                        .text
                        .strip_prefix('"')
                        .and_then(|s| s.strip_suffix('"'))
                    {
                        ids.push((id.to_owned(), span.line));
                    }
                }
                prev_code_tail.clear();
            }
            _ => {}
        }
    }
    ids
}

/// R01: every registry id must appear (identifier-bounded) in the README.
#[must_use]
pub fn check_readme_mentions(
    registry_rel: &str,
    ids: &[(String, usize)],
    readme: &str,
) -> Vec<Finding> {
    ids.iter()
        .filter(|(id, _)| find_word(readme, id).is_none())
        .map(|(id, line)| Finding {
            rule: "R01",
            file: registry_rel.to_owned(),
            line: *line,
            message: format!(
                "experiment id `{id}` is not mentioned in README.md — document it next to the \
                 other experiments"
            ),
            waived: None,
        })
        .collect()
}

/// R02: every baseline pin's id prefix must be a live experiment id (or an
/// explicitly allowed harness prefix such as `bench_step`).
#[must_use]
pub fn check_baseline_pins(
    baseline_rel: &str,
    baseline_json: &str,
    ids: &[(String, usize)],
    config: &Config,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (pin, line) in baseline_metric_ids(baseline_json) {
        let prefix = pin.split('/').next().unwrap_or(&pin);
        let live = ids.iter().any(|(id, _)| id == prefix)
            || config.r02_allow_prefixes.iter().any(|p| p == prefix);
        if !live {
            findings.push(Finding {
                rule: "R02",
                file: baseline_rel.to_owned(),
                line,
                message: format!(
                    "baseline pin `{pin}` has prefix `{prefix}` which is not a live experiment \
                     id — drop the stale pin or fix the id"
                ),
                waived: None,
            });
        }
    }
    findings
}

/// Scans the baseline JSON for `"id": "…"` pairs, with 1-indexed lines.
/// (A full JSON parse is overkill: the file is machine-written by
/// `bench_diff write-baseline` with one entry per line.)
fn baseline_metric_ids(json: &str) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    for (index, line) in json.lines().enumerate() {
        let Some(at) = line.find("\"id\"") else {
            continue;
        };
        let rest = &line[at + 4..];
        let Some(colon) = rest.find(':') else {
            continue;
        };
        let rest = rest[colon + 1..].trim_start();
        if let Some(value) = rest.strip_prefix('"') {
            if let Some(end) = value.find('"') {
                out.push((value[..end].to_owned(), index + 1));
            }
        }
    }
    out
}

/// Applies the waiver table: marks matched findings as waived and returns
/// stale waivers (entries that matched nothing) as fresh findings.
pub fn apply_waivers(findings: &mut [Finding], config: &Config) -> Vec<Finding> {
    let mut used = vec![false; config.waivers.len()];
    for finding in findings.iter_mut() {
        if let Some(index) = config.waivers.iter().position(|w| {
            w.rule == finding.rule && w.file == finding.file && w.line == finding.line
        }) {
            finding.waived = Some(config.waivers[index].justification.clone());
            used[index] = true;
        }
    }
    config
        .waivers
        .iter()
        .zip(&used)
        .filter(|&(_, &u)| !u)
        .map(|(waiver, _)| Finding {
            rule: "W00",
            file: waiver.file.clone(),
            line: waiver.line,
            message: format!(
                "stale waiver: no {} finding at {}:{} — the anchored line moved or the site was \
                 fixed; update or remove the waiver ({})",
                waiver.rule, waiver.file, waiver.line, waiver.justification
            ),
            waived: None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_config() -> Config {
        Config::default()
    }

    fn rules_fired(findings: &[Finding], rule: &str) -> usize {
        findings.iter().filter(|f| f.rule == rule).count()
    }

    #[test]
    fn d01_fires_on_hashmap_in_sim_code() {
        let findings = check_file(
            "crates/core/src/network.rs",
            "use std::collections::HashMap;\n",
            &no_config(),
        );
        assert_eq!(rules_fired(&findings, "D01"), 1);
        assert_eq!(findings[0].line, 1);
    }

    #[test]
    fn d01_is_silent_in_cfg_test_modules_and_test_files() {
        let src =
            "fn live() {}\n#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n}\n";
        assert_eq!(
            rules_fired(&check_file("crates/x/src/lib.rs", src, &no_config()), "D01"),
            0
        );
        let findings = check_file(
            "tests/golden.rs",
            "use std::collections::HashMap;\n",
            &no_config(),
        );
        assert_eq!(rules_fired(&findings, "D01"), 0);
    }

    #[test]
    fn d01_is_silent_on_comments_and_strings() {
        let src = "// HashMap in a comment\nlet s = \"HashMap\";\n";
        assert_eq!(
            rules_fired(&check_file("crates/x/src/lib.rs", src, &no_config()), "D01"),
            0
        );
    }

    #[test]
    fn d01_does_not_fire_after_the_test_module_closes() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f() {}\n}\nuse std::collections::HashMap;\n";
        let findings = check_file("crates/x/src/lib.rs", src, &no_config());
        assert_eq!(rules_fired(&findings, "D01"), 1);
        assert_eq!(findings[0].line, 5);
    }

    #[test]
    fn d02_fires_on_instant_and_respects_waivers() {
        let src = "use std::time::Instant;\n";
        let mut findings = check_file("crates/core/src/sweep.rs", src, &no_config());
        // The `use` line matches both `std::time` and `Instant` patterns but
        // fires once per (rule, line).
        assert_eq!(rules_fired(&findings, "D02"), 1);

        let config = crate::config::parse(
            "[[waiver]]\nrule = \"D02\"\nfile = \"crates/core/src/sweep.rs\"\nline = 1\n\
             justification = \"reporting only\"\n",
        )
        .unwrap();
        let stale = apply_waivers(&mut findings, &config);
        assert!(stale.is_empty());
        assert_eq!(findings[0].waived.as_deref(), Some("reporting only"));
    }

    #[test]
    fn stale_waivers_surface_as_findings() {
        let config = crate::config::parse(
            "[[waiver]]\nrule = \"D02\"\nfile = \"crates/core/src/sweep.rs\"\nline = 999\n\
             justification = \"moved\"\n",
        )
        .unwrap();
        let stale = apply_waivers(&mut [], &config);
        assert_eq!(stale.len(), 1);
        assert!(stale[0].message.contains("stale waiver"));
    }

    #[test]
    fn d04_allowlist_exempts_the_partition_pool() {
        let src = "std::thread::Builder::new();\n";
        assert_eq!(
            rules_fired(
                &check_file("crates/core/src/other.rs", src, &no_config()),
                "D04"
            ),
            1
        );
        let config =
            crate::config::parse("[allow.d04]\nfiles = [\"crates/core/src/partition.rs\"]\n")
                .unwrap();
        assert_eq!(
            rules_fired(
                &check_file("crates/core/src/partition.rs", src, &config),
                "D04"
            ),
            0
        );
    }

    #[test]
    fn d04_ignores_non_thread_spawn_methods() {
        let src = "let pool = StepPool::spawn(4); scope.spawn(|| {});\n";
        assert_eq!(
            rules_fired(&check_file("crates/x/src/lib.rs", src, &no_config()), "D04"),
            0
        );
    }

    #[test]
    fn d05_fires_on_env_reads() {
        let src = "let v = std::env::var(\"KNOB\");\n";
        assert_eq!(
            rules_fired(&check_file("crates/x/src/lib.rs", src, &no_config()), "D05"),
            1
        );
    }

    #[test]
    fn u01_accepts_safety_comments_above_and_inline() {
        let documented = "// SAFETY: disjoint indices.\nlet x = unsafe { go() };\n";
        let findings = check_file("crates/core/src/partition.rs", documented, &no_config());
        assert_eq!(rules_fired(&findings, "U01"), 0);

        let inline = "let x = unsafe { go() }; // SAFETY: disjoint indices.\n";
        let findings = check_file("crates/core/src/partition.rs", inline, &no_config());
        assert_eq!(rules_fired(&findings, "U01"), 0);

        let undocumented = "let y = 1;\nlet x = unsafe { go() };\n";
        let findings = check_file("crates/core/src/partition.rs", undocumented, &no_config());
        assert_eq!(rules_fired(&findings, "U01"), 1);
    }

    #[test]
    fn u01_skips_attributes_between_comment_and_item() {
        let src = "// SAFETY: raw pointers are disjoint.\n#[allow(dead_code)]\nunsafe impl Send for X {}\n";
        assert_eq!(
            rules_fired(
                &check_file("crates/core/src/partition.rs", src, &no_config()),
                "U01"
            ),
            0
        );
    }

    #[test]
    fn u02_fires_outside_the_allowlist_even_with_safety_comment() {
        let src = "// SAFETY: looks fine.\nlet x = unsafe { go() };\n";
        let config =
            crate::config::parse("[allow.u02]\nfiles = [\"crates/core/src/partition.rs\"]\n")
                .unwrap();
        assert_eq!(
            rules_fired(
                &check_file("crates/core/src/partition.rs", src, &config),
                "U02"
            ),
            0
        );
        assert_eq!(
            rules_fired(&check_file("crates/router/src/lib.rs", src, &config), "U02"),
            1
        );
    }

    #[test]
    fn registry_ids_come_from_the_macro_literals() {
        let src = r#"
            experiments! {
                Fig5 { id: "fig5", desc: "latency vs throughput", run: |_| todo!() },
                // id: "not_this_one" (comment)
                Serving { id: "serving", desc: "closed loop", run: |_| todo!() },
            }
        "#;
        let ids = registry_ids(src);
        let names: Vec<&str> = ids.iter().map(|(id, _)| id.as_str()).collect();
        assert_eq!(names, ["fig5", "serving"]);
    }

    #[test]
    fn r01_flags_ids_missing_from_readme() {
        let ids = vec![("fig5".to_owned(), 3), ("stress64".to_owned(), 9)];
        let findings =
            check_readme_mentions("crates/bench/src/registry.rs", &ids, "only `fig5` here");
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("stress64"));
        assert_eq!(findings[0].line, 9);
    }

    #[test]
    fn r02_flags_pins_without_live_experiments() {
        let ids = vec![("fig5".to_owned(), 1)];
        let config = crate::config::parse("[r02]\nallow_prefixes = [\"bench_step\"]\n").unwrap();
        let json = "{\n  \"entries\": [\n    { \"id\": \"fig5/proposed/k4/saturation_gbps\" },\n    { \"id\": \"bench_step/step_8x8\" },\n    { \"id\": \"ghost/metric\" }\n  ]\n}\n";
        let findings = check_baseline_pins("tools/bench_baseline.json", json, &ids, &config);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("ghost"));
        assert_eq!(findings[0].line, 5);
    }
}
