//! `tools/noc_lint.toml`: rule allowlists and per-site waivers.
//!
//! The build environment has no `toml` crate, so a small line-oriented
//! parser below handles the subset the config actually uses:
//!
//! ```toml
//! [allow.d04]
//! files = ["crates/core/src/partition.rs"]
//!
//! [[waiver]]
//! rule = "D02"
//! file = "crates/core/src/sweep.rs"
//! line = 298
//! justification = "wall-clock reporting only"
//! ```
//!
//! Waivers are anchored to an exact `file:line` and carry a mandatory
//! justification; when the anchored line moves, the waiver stops matching
//! and `noc-lint check` fails on **both** the resurfaced finding and the
//! stale waiver — exceptions go stale loudly instead of silently widening.

use std::collections::BTreeMap;

/// One reviewed exception: suppresses exactly one finding at `file:line`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waiver {
    /// Rule id the waiver applies to (e.g. `D02`).
    pub rule: String,
    /// Repo-relative path with forward slashes.
    pub file: String,
    /// 1-indexed line the finding sits on.
    pub line: usize,
    /// Why the exception is sound. Mandatory and non-empty.
    pub justification: String,
}

/// Parsed `noc_lint.toml`.
#[derive(Debug, Default, Clone)]
pub struct Config {
    /// Per-rule file allowlists, keyed by lower-case rule id (`"u02"`).
    pub allow_files: BTreeMap<String, Vec<String>>,
    /// Extra legal metric-id prefixes for R02 (e.g. `bench_step`, the
    /// criterion harness that is not a registry experiment).
    pub r02_allow_prefixes: Vec<String>,
    /// Site waivers, in file order.
    pub waivers: Vec<Waiver>,
}

impl Config {
    /// Is `file` allowlisted for `rule` (lower-case id)?
    #[must_use]
    pub fn is_allowed(&self, rule: &str, file: &str) -> bool {
        self.allow_files
            .get(rule)
            .is_some_and(|files| files.iter().any(|f| f == file))
    }
}

/// Parses the config text; errors carry a line number and reason.
pub fn parse(text: &str) -> Result<Config, String> {
    let mut config = Config::default();
    // Current section: None, Some(Section::Allow(rule)) or a waiver under
    // construction.
    enum Section {
        Allow(String),
        R02,
        Waiver(PartialWaiver),
    }
    #[derive(Default)]
    struct PartialWaiver {
        rule: Option<String>,
        file: Option<String>,
        line: Option<usize>,
        justification: Option<String>,
        header_line: usize,
    }
    fn finish(section: Option<Section>, config: &mut Config) -> Result<(), String> {
        if let Some(Section::Waiver(w)) = section {
            let missing = |what: &str| {
                format!(
                    "waiver starting at line {} is missing `{what}`",
                    w.header_line
                )
            };
            let justification = w.justification.ok_or_else(|| missing("justification"))?;
            if justification.trim().is_empty() {
                return Err(format!(
                    "waiver starting at line {} has an empty justification",
                    w.header_line
                ));
            }
            config.waivers.push(Waiver {
                rule: w.rule.ok_or_else(|| missing("rule"))?,
                file: w.file.ok_or_else(|| missing("file"))?,
                line: w.line.ok_or_else(|| missing("line"))?,
                justification,
            });
        }
        Ok(())
    }

    let mut section: Option<Section> = None;
    for (index, raw) in text.lines().enumerate() {
        let lineno = index + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix("[[").and_then(|s| s.strip_suffix("]]")) {
            finish(section.take(), &mut config)?;
            if header.trim() != "waiver" {
                return Err(format!(
                    "line {lineno}: unknown array-of-tables [[{header}]]"
                ));
            }
            section = Some(Section::Waiver(PartialWaiver {
                header_line: lineno,
                ..PartialWaiver::default()
            }));
            continue;
        }
        if let Some(header) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
            finish(section.take(), &mut config)?;
            let header = header.trim();
            if let Some(rule) = header.strip_prefix("allow.") {
                section = Some(Section::Allow(rule.to_owned()));
            } else if header == "r02" {
                section = Some(Section::R02);
            } else {
                return Err(format!("line {lineno}: unknown section [{header}]"));
            }
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| format!("line {lineno}: expected `key = value`"))?;
        let (key, value) = (key.trim(), value.trim());
        match section.as_mut() {
            None => return Err(format!("line {lineno}: `{key}` outside any section")),
            Some(Section::Allow(rule)) => {
                if key != "files" {
                    return Err(format!("line {lineno}: [allow.*] only takes `files`"));
                }
                config
                    .allow_files
                    .entry(rule.clone())
                    .or_default()
                    .extend(parse_string_array(value, lineno)?);
            }
            Some(Section::R02) => {
                if key != "allow_prefixes" {
                    return Err(format!("line {lineno}: [r02] only takes `allow_prefixes`"));
                }
                config.r02_allow_prefixes = parse_string_array(value, lineno)?;
            }
            Some(Section::Waiver(w)) => match key {
                "rule" => w.rule = Some(parse_string(value, lineno)?),
                "file" => w.file = Some(parse_string(value, lineno)?),
                "line" => {
                    w.line = Some(value.parse().map_err(|_| {
                        format!("line {lineno}: `line` must be an integer, got `{value}`")
                    })?);
                }
                "justification" => w.justification = Some(parse_string(value, lineno)?),
                other => return Err(format!("line {lineno}: unknown waiver key `{other}`")),
            },
        }
    }
    finish(section.take(), &mut config)?;
    Ok(config)
}

/// Drops a trailing `# comment`, respecting `#` inside quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    let mut prev_backslash = false;
    for (i, ch) in line.char_indices() {
        match ch {
            '"' if !prev_backslash => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
        prev_backslash = ch == '\\' && !prev_backslash;
    }
    line
}

fn parse_string(value: &str, lineno: usize) -> Result<String, String> {
    let inner = value
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .ok_or_else(|| format!("line {lineno}: expected a \"quoted string\", got `{value}`"))?;
    // The config subset needs no escapes beyond literal text; reject
    // backslashes so nobody expects them to work.
    if inner.contains('\\') {
        return Err(format!(
            "line {lineno}: escapes are not supported in strings"
        ));
    }
    Ok(inner.to_owned())
}

fn parse_string_array(value: &str, lineno: usize) -> Result<Vec<String>, String> {
    let inner = value
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| format!("line {lineno}: expected a [\"…\", …] array, got `{value}`"))?;
    let inner = inner.trim();
    if inner.is_empty() {
        return Ok(Vec::new());
    }
    inner
        .split(',')
        .map(str::trim)
        .filter(|item| !item.is_empty())
        .map(|item| parse_string(item, lineno))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_allowlists_waivers_and_prefixes() {
        let config = parse(
            r#"
            # header comment
            [allow.u02]
            files = ["crates/core/src/partition.rs"]

            [allow.d04]
            files = ["a.rs", "b.rs"]  # trailing comment

            [r02]
            allow_prefixes = ["bench_step"]

            [[waiver]]
            rule = "D02"
            file = "crates/core/src/sweep.rs"
            line = 298
            justification = "wall-clock reporting only"
            "#,
        )
        .unwrap();
        assert!(config.is_allowed("u02", "crates/core/src/partition.rs"));
        assert!(!config.is_allowed("u02", "crates/core/src/network.rs"));
        assert_eq!(config.allow_files["d04"], ["a.rs", "b.rs"]);
        assert_eq!(config.r02_allow_prefixes, ["bench_step"]);
        assert_eq!(
            config.waivers,
            [Waiver {
                rule: "D02".into(),
                file: "crates/core/src/sweep.rs".into(),
                line: 298,
                justification: "wall-clock reporting only".into(),
            }]
        );
    }

    #[test]
    fn waiver_without_justification_is_rejected() {
        let err = parse("[[waiver]]\nrule = \"D01\"\nfile = \"x.rs\"\nline = 1\n").unwrap_err();
        assert!(err.contains("justification"), "{err}");
    }

    #[test]
    fn empty_justification_is_rejected() {
        let err = parse(
            "[[waiver]]\nrule = \"D01\"\nfile = \"x.rs\"\nline = 1\njustification = \"  \"\n",
        )
        .unwrap_err();
        assert!(err.contains("empty justification"), "{err}");
    }

    #[test]
    fn unknown_sections_and_keys_are_rejected() {
        assert!(parse("[mystery]\n").is_err());
        assert!(parse("[[waiver]]\nbogus = \"x\"\n").is_err());
        assert!(parse("stray = \"x\"\n").is_err());
    }

    #[test]
    fn hash_inside_strings_is_not_a_comment() {
        let config = parse("[r02]\nallow_prefixes = [\"bench#step\"]\n").unwrap();
        assert_eq!(config.r02_allow_prefixes, ["bench#step"]);
    }
}
