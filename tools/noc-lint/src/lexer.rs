//! A comment/string/raw-string-aware Rust lexer.
//!
//! The rule engine must never fire on the word `HashMap` inside a doc
//! comment or on `"SAFETY:"` inside a string literal, so before any rule
//! runs the source is split into [`Span`]s tagged by syntactic class. Two
//! derived views drive the rules:
//!
//! * [`FileLex::code_view`] — the source with comment text and the *inside*
//!   of string/char literals blanked to spaces (newlines kept, so line
//!   numbers survive). D/U rules pattern-match against this.
//! * [`FileLex::comment_lines_containing`] — the lines whose comment text
//!   holds a given needle, used by U01 to find `// SAFETY:` justifications.
//!
//! The lexer understands nested block comments, `//` line comments, string
//! literals with escapes, raw strings `r"…"` / `r#"…"#` (any hash depth),
//! byte and raw-byte strings (`b"…"`, `br#"…"#`), char and byte-char
//! literals (`'x'`, `b'\n'`) and tells lifetimes (`'a`) apart from char
//! literals. It does not need to be a full Rust lexer — only to never
//! misclassify which bytes are code.

/// Syntactic class of a [`Span`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Plain code: keywords, identifiers, punctuation.
    Code,
    /// `// …` to end of line (includes `///` and `//!` doc comments).
    LineComment,
    /// `/* … */`, possibly nested and spanning lines.
    BlockComment,
    /// A string, raw-string, byte-string, char or byte-char literal,
    /// *including* its delimiters.
    Literal,
}

/// One contiguous run of bytes of a single [`Kind`].
#[derive(Debug, Clone)]
pub struct Span {
    /// Classification of this run.
    pub kind: Kind,
    /// 1-indexed line the span starts on.
    pub line: usize,
    /// The exact source text of the span.
    pub text: String,
}

/// A lexed file: the span stream plus the derived rule-facing views.
#[derive(Debug)]
pub struct FileLex {
    spans: Vec<Span>,
    code: String,
}

impl FileLex {
    /// Lexes `src` into classified spans.
    #[must_use]
    pub fn new(src: &str) -> Self {
        let spans = lex(src);
        let code = build_code_view(&spans);
        FileLex { spans, code }
    }

    /// The classified span stream, in source order.
    #[must_use]
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// The source with comments and literal *contents* blanked to spaces.
    ///
    /// Same length and line structure as the input: newlines inside block
    /// comments and multi-line strings are preserved, so byte offsets and
    /// line numbers in this view match the original file.
    #[must_use]
    pub fn code_view(&self) -> &str {
        &self.code
    }

    /// Code-view lines, 0-indexed (line 1 of the file is `lines()[0]`).
    #[must_use]
    pub fn code_lines(&self) -> Vec<&str> {
        self.code.lines().collect()
    }

    /// 1-indexed line numbers on which a comment containing `needle` sits
    /// (every line of a multi-line block comment counts).
    #[must_use]
    pub fn comment_lines_containing(&self, needle: &str) -> Vec<usize> {
        let mut out = Vec::new();
        for span in &self.spans {
            if !matches!(span.kind, Kind::LineComment | Kind::BlockComment) {
                continue;
            }
            for (offset, line_text) in span.text.lines().enumerate() {
                if line_text.contains(needle) {
                    out.push(span.line + offset);
                }
            }
        }
        out
    }
}

/// Blanks comments and literal contents (keeping delimiters and newlines).
fn build_code_view(spans: &[Span]) -> String {
    let mut out = String::new();
    for span in spans {
        match span.kind {
            Kind::Code => out.push_str(&span.text),
            Kind::LineComment | Kind::BlockComment => {
                blank_preserving_newlines(&span.text, &mut out);
            }
            Kind::Literal => {
                // Keep the opening delimiter run (so `r#"` still reads as a
                // literal boundary in the view) but blank everything else.
                let mut chars = span.text.chars();
                if let Some(first) = chars.next() {
                    out.push(first);
                }
                blank_preserving_newlines(chars.as_str(), &mut out);
            }
        }
    }
    out
}

fn blank_preserving_newlines(text: &str, out: &mut String) {
    for ch in text.chars() {
        out.push(if ch == '\n' { '\n' } else { ' ' });
    }
}

/// The lexer proper: a scan over `src` producing classified spans.
fn lex(src: &str) -> Vec<Span> {
    let bytes = src.as_bytes();
    let mut spans = Vec::new();
    let mut line = 1usize;
    let mut start = 0usize;
    let mut start_line = 1usize;
    let mut i = 0usize;

    macro_rules! flush_code {
        () => {
            if start < i {
                spans.push(Span {
                    kind: Kind::Code,
                    line: start_line,
                    text: src[start..i].to_owned(),
                });
            }
        };
    }

    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                flush_code!();
                let begin = i;
                let begin_line = line;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                spans.push(Span {
                    kind: Kind::LineComment,
                    line: begin_line,
                    text: src[begin..i].to_owned(),
                });
                start = i;
                start_line = line;
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                flush_code!();
                let begin = i;
                let begin_line = line;
                let mut depth = 1usize;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if bytes[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                spans.push(Span {
                    kind: Kind::BlockComment,
                    line: begin_line,
                    text: src[begin..i].to_owned(),
                });
                start = i;
                start_line = line;
            }
            b'"' => {
                flush_code!();
                let begin = i;
                let begin_line = line;
                i = scan_string(bytes, i, &mut line);
                spans.push(Span {
                    kind: Kind::Literal,
                    line: begin_line,
                    text: src[begin..i].to_owned(),
                });
                start = i;
                start_line = line;
            }
            b'r' | b'b' if is_literal_prefix(bytes, i) && !prev_is_ident(bytes, i) => {
                // One of r"…", r#"…"#, b"…", br"…", b'…', br#"…"# (the
                // helper already verified the shape).
                flush_code!();
                let begin = i;
                let begin_line = line;
                i = scan_prefixed_literal(bytes, i, &mut line);
                spans.push(Span {
                    kind: Kind::Literal,
                    line: begin_line,
                    text: src[begin..i].to_owned(),
                });
                start = i;
                start_line = line;
            }
            b'\'' => {
                if let Some(end) = scan_char_literal(bytes, i) {
                    flush_code!();
                    spans.push(Span {
                        kind: Kind::Literal,
                        line,
                        text: src[i..end].to_owned(),
                    });
                    i = end;
                    start = i;
                    start_line = line;
                } else {
                    // A lifetime (`'a`) or a stray quote: plain code.
                    i += 1;
                }
            }
            _ => i += 1,
        }
    }
    flush_code!();
    spans
}

/// Does `r`/`b` at `i` open a (raw/byte) string or byte-char literal?
fn is_literal_prefix(bytes: &[u8], i: usize) -> bool {
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
        if bytes.get(j) == Some(&b'\'') {
            return true; // b'…'
        }
    }
    if bytes.get(j) == Some(&b'r') {
        j += 1;
    }
    while bytes.get(j) == Some(&b'#') {
        j += 1;
    }
    // `r#ident` raw identifiers fall through to `false` here because the
    // char after the hashes is not a quote.
    bytes.get(j) == Some(&b'"') && j > i
}

/// Is the byte before `i` part of an identifier (so `abr"x"` is not a
/// literal prefix)?
fn prev_is_ident(bytes: &[u8], i: usize) -> bool {
    i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_')
}

/// Scans a plain `"…"` string starting at the opening quote; returns the
/// index one past the closing quote.
fn scan_string(bytes: &[u8], mut i: usize, line: &mut usize) -> usize {
    i += 1; // opening quote
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Scans `r"…"`, `r#"…"#`, `b"…"`, `br##"…"##` or `b'…'` starting at the
/// prefix; returns the index one past the closing delimiter.
fn scan_prefixed_literal(bytes: &[u8], mut i: usize, line: &mut usize) -> usize {
    let mut raw = false;
    if bytes[i] == b'b' {
        i += 1;
        if bytes.get(i) == Some(&b'\'') {
            // Byte-char literal: reuse the char scanner (cannot fail — the
            // prefix check saw the quote).
            return scan_char_literal(bytes, i).unwrap_or(bytes.len());
        }
    }
    if bytes.get(i) == Some(&b'r') {
        raw = true;
        i += 1;
    }
    let mut hashes = 0usize;
    while bytes.get(i) == Some(&b'#') {
        hashes += 1;
        i += 1;
    }
    i += 1; // opening quote
    if !raw {
        // b"…" — escapes apply.
        while i < bytes.len() {
            match bytes[i] {
                b'\\' => i += 2,
                b'"' => return i + 1,
                b'\n' => {
                    *line += 1;
                    i += 1;
                }
                _ => i += 1,
            }
        }
        return i;
    }
    // Raw string: ends at `"` followed by `hashes` hash marks, no escapes.
    while i < bytes.len() {
        if bytes[i] == b'"' {
            let mut j = i + 1;
            let mut seen = 0usize;
            while seen < hashes && bytes.get(j) == Some(&b'#') {
                seen += 1;
                j += 1;
            }
            if seen == hashes {
                return j;
            }
        }
        if bytes[i] == b'\n' {
            *line += 1;
        }
        i += 1;
    }
    i
}

/// Scans a char literal at the opening `'`; returns `None` when the quote
/// starts a lifetime instead.
fn scan_char_literal(bytes: &[u8], i: usize) -> Option<usize> {
    match bytes.get(i + 1)? {
        b'\\' => {
            // Escaped char: find the closing quote (handles '\'', '\n',
            // '\u{1F600}').
            let mut j = i + 2;
            if bytes.get(j) == Some(&b'\'') || bytes.get(j) == Some(&b'\\') {
                j += 1;
            }
            while j < bytes.len() && bytes[j] != b'\'' {
                j += 1;
            }
            (j < bytes.len()).then_some(j + 1)
        }
        _ => {
            // `'x'` is a char literal; `'x` followed by anything else is a
            // lifetime. Multi-byte UTF-8 scalars also close with a quote.
            let mut k = i + 2;
            while k < bytes.len() && (bytes[k] & 0xC0) == 0x80 {
                k += 1;
            }
            (bytes.get(k) == Some(&b'\'')).then_some(k + 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(Kind, String)> {
        FileLex::new(src)
            .spans()
            .iter()
            .map(|s| (s.kind, s.text.clone()))
            .collect()
    }

    #[test]
    fn line_comments_are_split_out() {
        let lex = FileLex::new("let x = 1; // HashMap here\nlet y = 2;\n");
        assert!(!lex.code_view().contains("HashMap"));
        assert!(lex.code_view().contains("let y = 2;"));
        assert_eq!(lex.comment_lines_containing("HashMap"), vec![1]);
    }

    #[test]
    fn nested_block_comments_close_at_the_outer_level() {
        let src = "a /* outer /* inner */ still comment */ b";
        let spans = kinds(src);
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[1].0, Kind::BlockComment);
        assert!(spans[1].1.contains("inner"));
        let lex = FileLex::new(src);
        assert!(lex.code_view().contains('a'));
        assert!(lex.code_view().contains('b'));
        assert!(!lex.code_view().contains("still"));
    }

    #[test]
    fn block_comment_line_numbers_survive() {
        let src = "/* one\ntwo\nthree */\nlet x = HashMap::new();\n";
        let lex = FileLex::new(src);
        // `HashMap` in code sits on line 4 of the view too.
        let lines = lex.code_lines();
        assert!(lines[3].contains("HashMap"));
    }

    #[test]
    fn string_contents_are_blanked_but_delimiters_stay() {
        let lex = FileLex::new(r#"let s = "unsafe // not code"; s"#);
        assert!(!lex.code_view().contains("unsafe"));
        assert!(!lex.code_view().contains("not code"));
        assert!(lex.code_view().starts_with("let s = \""));
    }

    #[test]
    fn slashes_inside_strings_do_not_open_comments() {
        let lex = FileLex::new(r#"let url = "http://example.com"; let live = 1;"#);
        assert!(lex.code_view().contains("let live = 1;"));
        assert_eq!(lex.comment_lines_containing("example"), Vec::<usize>::new());
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        let lex = FileLex::new(r#"let s = "a\"b HashMap c"; let t = 9;"#);
        assert!(!lex.code_view().contains("HashMap"));
        assert!(lex.code_view().contains("let t = 9;"));
    }

    #[test]
    fn raw_strings_ignore_escapes_and_match_hash_depth() {
        let src = r###"let s = r#"contains "quotes" and \ HashMap"#; done"###;
        let lex = FileLex::new(src);
        assert!(!lex.code_view().contains("HashMap"));
        assert!(lex.code_view().contains("done"));
    }

    #[test]
    fn byte_string_literals_are_literals() {
        let lex = FileLex::new(r#"let magic = b"NOCT HashMap"; let x = 1;"#);
        assert!(!lex.code_view().contains("HashMap"));
        assert!(lex.code_view().contains("let x = 1;"));
    }

    #[test]
    fn raw_byte_strings_are_literals() {
        let src = r###"let m = br#"raw "bytes" unsafe"#; tail"###;
        let lex = FileLex::new(src);
        assert!(!lex.code_view().contains("unsafe"));
        assert!(lex.code_view().contains("tail"));
    }

    #[test]
    fn lifetimes_are_code_but_char_literals_are_not() {
        let lex = FileLex::new("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert!(lex.code_view().contains("<'a>"));
        assert!(lex.code_view().contains("&'a str"));
        assert!(!lex.code_view().contains("'x'"));
    }

    #[test]
    fn escaped_char_literals_close_properly() {
        let lex = FileLex::new(r"let q = '\''; let n = '\n'; let u = '\u{1F600}'; rest");
        assert!(lex.code_view().contains("rest"));
        assert!(!lex.code_view().contains("1F600"));
    }

    #[test]
    fn byte_char_literals_are_literals() {
        let lex = FileLex::new(r"let b = b'x'; let e = b'\n'; tail");
        assert!(!lex.code_view().contains("b'x'"));
        assert!(lex.code_view().contains("tail"));
    }

    #[test]
    fn raw_identifiers_are_not_raw_strings() {
        let lex = FileLex::new("let r#match = 1; let after = 2;");
        assert!(lex.code_view().contains("r#match"));
        assert!(lex.code_view().contains("let after = 2;"));
    }

    #[test]
    fn identifier_ending_in_r_does_not_open_a_raw_string() {
        let lex = FileLex::new(r#"let var = parser"x"; tail"#);
        // `parser` ends in `r` but is part of an identifier, so only the
        // plain string that follows is a literal.
        assert!(lex.code_view().contains("parser"));
        assert!(lex.code_view().contains("tail"));
    }

    #[test]
    fn safety_comment_lines_are_reported_per_line() {
        let src = "// SAFETY: one\n/* SAFETY: two\nspanning */\ncode();\n";
        let lex = FileLex::new(src);
        assert_eq!(lex.comment_lines_containing("SAFETY:"), vec![1, 2]);
    }
}
