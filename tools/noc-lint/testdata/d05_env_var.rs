//! D05 corpus: exactly one environment read outside the approved config
//! entry points. The `env::var` in the byte string below stays silent.

pub fn hidden_knob() -> bool {
    let magic = b"env::var markers inside byte strings are data";
    std::env::var("NOC_SECRET_KNOB").is_ok() && !magic.is_empty()
}
