//! D01 corpus: exactly one hash-ordered collection in live simulation code.
//! The HashMap mentioned in this comment, the one in the string below and
//! the HashSet inside the cfg(test) module must all stay silent.

use std::collections::HashMap;

pub fn scoreboard() -> usize {
    let note = "a HashMap in a string literal is not code";
    note.len()
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_local_hash_sets_are_fine() {
        let mut seen = std::collections::HashSet::new();
        seen.insert(1);
    }
}
