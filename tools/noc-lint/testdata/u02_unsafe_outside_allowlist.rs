//! U02 corpus: a properly documented `unsafe` block — U01 is satisfied by
//! the SAFETY comment — in a file that is not on the `[allow.u02]`
//! allowlist, so exactly one U02 finding fires.

pub fn read_first(values: &[u32]) -> u32 {
    let base = values.as_ptr();
    // SAFETY: the slice is non-empty at every call site and `base` points at
    // its first initialised element.
    unsafe { *base }
}
