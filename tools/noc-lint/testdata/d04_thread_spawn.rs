//! D04 corpus: exactly one ad-hoc thread spawn outside the allowlisted
//! parallelism layers. `StepPool::spawn` and `scope.spawn` are method calls
//! on owned types, not `std::thread` entry points, and must stay silent.

pub fn fan_out() {
    let handle = std::thread::spawn(|| 42);
    let _ = handle.join();
}

pub fn pool_reuse(pool: &StepPool, scope: &Scope) {
    let _ = StepPool::spawn(4);
    scope.spawn(|| {});
}
