//! Clean corpus: every lexer escape hatch in one file, zero findings.
//!
//! HashMap, Instant, thread_rng, std::env and unsafe all appear below —
//! but only inside comments, strings, raw strings, byte strings, char-free
//! lifetimes or `#[cfg(test)]` regions, so the gate must stay silent.

/* Block comment mentioning HashMap and unsafe,
   /* nested: SystemTime thread_rng */
   still inside the outer comment: std::env::var */

pub fn decoys<'a>(input: &'a str) -> usize {
    let s = "HashMap and unsafe in a plain string // with a fake comment";
    let r = r#"Instant and "std::time" in a raw string"#;
    let b = b"thread_rng in a byte string";
    let rb = br#"std::env::var in a raw byte string"#;
    let q = '"'; // a char literal quote must not open a string
    let escaped = "escaped quote \" then HashMap";
    input.len() + s.len() + r.len() + b.len() + rb.len() + escaped.len() + (q == '"') as usize
}

#[cfg(test)]
mod tests {
    use std::collections::{HashMap, HashSet};

    #[test]
    fn test_code_may_use_hash_collections_and_clocks() {
        let mut map = HashMap::new();
        map.insert("k", 1);
        let mut set = HashSet::new();
        set.insert(std::time::Instant::now());
    }
}
