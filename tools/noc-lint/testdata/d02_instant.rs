//! D02 corpus: exactly one wall-clock read in live simulation code.
//! `Instant` in this comment and in the raw string stay silent.

pub fn measure() -> u64 {
    let started = std::time::Instant::now();
    let doc = r#"SystemTime and Instant inside a raw string are not code"#;
    (doc.len() + started.elapsed().subsec_nanos() as usize) as u64
}
