//! U01 corpus: exactly one `unsafe` block with no `// SAFETY:` comment.
//! (It also trips U02 — this file is not on the unsafe allowlist — which is
//! why the corpus test filters findings by rule id.)

pub fn read_first(values: &[u32]) -> u32 {
    let base = values.as_ptr();
    unsafe { *base }
}
