//! D03 corpus: exactly one ambient-randomness draw in live code.
//! (The determinism contract requires every random bit to flow from the
//! seeded LFSR/PRBS layer; thread_rng here must be the only finding.)

pub fn roll() -> u32 {
    let mut rng = rand::thread_rng();
    rng.next_u32()
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_draw_ambient_randomness() {
        let _ = rand::thread_rng();
    }
}
