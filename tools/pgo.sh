#!/usr/bin/env bash
# Profile-guided optimization build of the `repro` binary (ROADMAP item 4).
#
# Pipeline: build an instrumented `repro`, train it on `repro --quick all`
# (every registered experiment, so the profile covers routers, NICs, the
# partitioned stepper, the closed-loop layer and the sweep runner), merge
# the raw profiles, rebuild with `-Cprofile-use`, then time the plain and
# PGO binaries on the same workload and report the measured speedup.
#
# Measured speedup: run `tools/pgo.sh --record` on a host with a matching
# llvm-profdata and the script fills in the line below from its own A/B
# timing. The offline CI container cannot complete the pipeline — it ships
# llvm-profdata 14, which rejects the raw-profile format emitted by rustc's
# LLVM 22 ("unsupported instrumentation profile format version"), and the
# vendored-shim build policy forbids installing `rustup component add
# llvm-tools` — so the number is recorded from capable dev hosts only.
# MEASURED_SPEEDUP: unrecorded (no host with llvm-tools has run --record yet)
#
# Requirements: an `llvm-profdata` whose major version matches rustc's LLVM
# (`rustc -vV | grep LLVM`). The rustup `llvm-tools` component provides one
# inside the sysroot; distro packages (`llvm-profdata-NN`) also work.
#
# Usage: tools/pgo.sh [--record] [--train-args "..."] [--bench-args "..."]
#   --record       rewrite the MEASURED_SPEEDUP line above with this run's result
#   --train-args   workload for profile collection (default: --quick all)
#   --bench-args   workload for the final A/B timing (default: --quick stress16)
set -euo pipefail

cd "$(dirname "$0")/.."

record=0
train_args="--quick all"
bench_args="--quick stress16"
while [ "$#" -gt 0 ]; do
    case "$1" in
        --record) record=1 ;;
        --train-args) train_args=$2; shift ;;
        --bench-args) bench_args=$2; shift ;;
        *) echo "unknown argument: $1" >&2; exit 2 ;;
    esac
    shift
done

# ---------------------------------------------------------------- tooling
# Find an llvm-profdata whose major version matches rustc's LLVM: raw
# profiles are only readable by a merge tool at least as new as the
# compiler that emitted them, and older tools fail with "unsupported
# instrumentation profile format version".
rustc_llvm=$(rustc -vV | sed -n 's/^LLVM version: \([0-9]*\).*/\1/p')
sysroot=$(rustc --print sysroot)
host=$(rustc -vV | sed -n 's/^host: //p')
profdata=""
for candidate in \
    "$sysroot/lib/rustlib/$host/bin/llvm-profdata" \
    "llvm-profdata-$rustc_llvm" \
    "llvm-profdata"; do
    if command -v "$candidate" >/dev/null 2>&1; then
        found_major=$("$candidate" merge --version 2>/dev/null \
            | sed -n 's/.*LLVM version \([0-9]*\).*/\1/p' | head -n 1)
        if [ "${found_major:-0}" -ge "$rustc_llvm" ]; then
            profdata=$candidate
            break
        fi
        echo "note: $candidate is LLVM ${found_major:-?}, need >= $rustc_llvm; skipping" >&2
    fi
done
if [ -z "$profdata" ]; then
    cat >&2 <<EOF
error: no llvm-profdata matching rustc's LLVM $rustc_llvm found.
Install the rustup llvm-tools component (rustup component add llvm-tools)
or a distro llvm-$rustc_llvm package, then re-run. The offline CI container
intentionally lacks both; PGO is a dev-host opt-in (see README "PGO builds").
EOF
    exit 2
fi
echo "using $profdata (rustc LLVM $rustc_llvm)"

# ----------------------------------------------------------- instrumented
profile_dir=target/pgo/profiles
rm -rf "$profile_dir"
mkdir -p "$profile_dir"
echo "[1/4] building instrumented repro"
RUSTFLAGS="-Cprofile-generate=$PWD/$profile_dir" \
    cargo build --release -p noc-bench --bin repro --target-dir target/pgo-gen

echo "[2/4] training on: repro $train_args"
# shellcheck disable=SC2086 # train_args is a deliberate word-split list
./target/pgo-gen/release/repro $train_args >/dev/null

"$profdata" merge -o target/pgo/repro.profdata "$profile_dir"

# -------------------------------------------------------------- optimized
echo "[3/4] rebuilding with the merged profile"
RUSTFLAGS="-Cprofile-use=$PWD/target/pgo/repro.profdata" \
    cargo build --release -p noc-bench --bin repro --target-dir target/pgo

# Plain binary for the A/B comparison, same codegen settings minus PGO.
cargo build --release -p noc-bench --bin repro

# ------------------------------------------------------------ measurement
# Three timed runs each, best-of to shed scheduler noise; the workload is
# deterministic so every run does identical work.
time_best_ms() {
    local binary=$1 best=; shift
    for _ in 1 2 3; do
        local start end elapsed
        start=$(date +%s%N)
        # shellcheck disable=SC2086 # bench_args is a deliberate word-split list
        "$binary" $bench_args >/dev/null
        end=$(date +%s%N)
        elapsed=$(( (end - start) / 1000000 ))
        if [ -z "$best" ] || [ "$elapsed" -lt "$best" ]; then
            best=$elapsed
        fi
    done
    echo "$best"
}

echo "[4/4] timing: repro $bench_args (best of 3)"
plain_ms=$(time_best_ms ./target/release/repro)
pgo_ms=$(time_best_ms ./target/pgo/release/repro)
speedup=$(awk -v a="$plain_ms" -v b="$pgo_ms" 'BEGIN { printf "%.2f", a / b }')
echo "plain: ${plain_ms} ms   pgo: ${pgo_ms} ms   speedup: ${speedup}x"
echo "PGO binary: target/pgo/release/repro"

if [ "$record" -eq 1 ]; then
    stamp="${speedup}x on \`repro $bench_args\` (plain ${plain_ms} ms, pgo ${pgo_ms} ms)"
    sed -i "s|^# MEASURED_SPEEDUP:.*|# MEASURED_SPEEDUP: $stamp|" "$0"
    echo "recorded into $(basename "$0") header: $stamp"
fi
