//! # noc-repro
//!
//! Umbrella crate for the reproduction of *"Approaching the Theoretical
//! Limits of a Mesh NoC with a 16-Node Chip Prototype in 45nm SOI"*
//! (Park et al., DAC 2012).
//!
//! `ARCHITECTURE.md`, at the repository root next to this crate's
//! `Cargo.toml`, maps the full system: the crate layering, the event-wheel
//! simulation core, the router's bitset allocation pipeline and the sweep
//! determinism contract. `README.md` alongside it covers building and
//! running the experiments.
//!
//! This crate re-exports the workspace members so that the examples in
//! `examples/` and the integration tests in `tests/` can reach every layer of
//! the system through a single dependency:
//!
//! * [`types`] — flits, packets, coordinates, ports, destination sets;
//! * [`topology`] — the mesh, XY / XY-tree routing and the theoretical limits
//!   of Table 1 (plus the Table 2 chip models);
//! * [`sim`] — the cycle kernel, PRBS generators and statistics;
//! * [`router`] — the baseline and virtually-bypassed multicast routers;
//! * [`traffic`] — the mixed / broadcast-only / unicast traffic generators;
//! * [`noc`] — the assembled network, simulations and sweeps (`mesh-noc`);
//! * [`power`] — measured / ORION-style / post-layout-style power models;
//! * [`circuit`] — the low-swing datapath, reliability, timing and area
//!   models.
//!
//! # Examples
//!
//! ```
//! use noc_repro::noc::{NocConfig, Simulation};
//!
//! let mut sim = Simulation::new(NocConfig::proposed_chip()?)?;
//! let result = sim.run(0.02, 200, 500)?;
//! assert!(result.average_latency_cycles > 0.0);
//! # Ok::<(), noc_repro::types::NocError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use noc_circuit as circuit;
pub use noc_power as power;
pub use noc_router as router;
pub use noc_sim as sim;
pub use noc_topology as topology;
pub use noc_traffic as traffic;
pub use noc_types as types;

/// The assembled mesh NoC (re-export of the `mesh-noc` crate).
pub mod noc {
    pub use mesh_noc::*;
}
