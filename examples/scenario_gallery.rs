//! Scenario gallery: sweep three spatial traffic patterns through the
//! fabricated chip with the fluent `ScenarioBuilder`, and watch how the
//! pattern alone moves the latency-throughput curve.
//!
//! Run with: `cargo run --release --example scenario_gallery`

use noc_repro::noc::{Scenario, SweepRunner};
use noc_repro::traffic::{SeedMode, SpatialPattern, TrafficMix};
use noc_repro::types::NocError;

fn main() -> Result<(), NocError> {
    let rates = [0.05, 0.15, 0.25, 0.35, 0.45, 0.55, 0.65];
    let runner = SweepRunner::new(2).with_windows(500, 2_000)?;

    println!("== scenario gallery: one network, three spatial patterns ==");
    println!("proposed 4x4 chip, unicast traffic, per-node PRBS seeds\n");
    for pattern in [
        SpatialPattern::uniform(),
        SpatialPattern::Transpose,
        SpatialPattern::corner_hotspot(4, 0.5),
    ] {
        // The builder assembles and validates the whole configuration in one
        // fluent chain — no hand-assembled NocConfig needed.
        let scenario = Scenario::builder()
            .pattern(pattern)
            .mix(TrafficMix::unicast_only())
            .seed_mode(SeedMode::PerNode)
            .rate(0.05)
            .build()?;
        let outcome = scenario.sweep(&runner, &rates)?;
        let curve = &outcome.curve;
        println!(
            "{:<16} zero-load {:>5.1} cyc | saturation {:>6.1} Gb/s at rate {:.2}",
            pattern.name(),
            curve.zero_load_latency_cycles,
            curve.saturation_gbps,
            curve.saturation_rate,
        );
        for point in &curve.points {
            println!(
                "    rate {:>4.2} -> latency {:>6.1} cyc, {:>6.1} Gb/s",
                point.injection_rate, point.latency_cycles, point.received_gbps
            );
        }
        println!();
    }
    println!("(every curve is bit-identical for any --jobs thread count;");
    println!(" see `repro patterns` for the full eight-pattern sweep)");
    Ok(())
}
