//! Ablation: how the VC/buffer provisioning interacts with the single-cycle
//! bypass pipeline.
//!
//! The chip chooses 4 one-flit request VCs and 2 three-flit response VCs per
//! port because the bypassed pipeline's buffer turnaround time is 3 cycles.
//! This example varies the request-class VC count and measures the effect on
//! saturation throughput for broadcast traffic, and also turns bypassing off
//! to show how a longer turnaround time wastes the same buffers.
//!
//! Run with: `cargo run --release --example vc_ablation`

use noc_repro::noc::{NetworkVariant, NocConfig, Simulation};
use noc_repro::router::VcConfig;
use noc_repro::traffic::{SeedMode, TrafficMix};
use noc_repro::types::NocError;

fn saturation_throughput(config: NocConfig) -> Result<f64, NocError> {
    // Offer well above the broadcast saturation point and report what the
    // network actually delivers.
    let mut sim = Simulation::new(config)?;
    let result = sim.run(0.12, 500, 3_000)?;
    Ok(result.received_gbps)
}

fn main() -> Result<(), NocError> {
    println!("== request-class VC count vs delivered broadcast throughput ==");
    println!(
        "{:>12} {:>22} {:>22}",
        "request VCs", "with bypass (Gb/s)", "without bypass (Gb/s)"
    );
    for vcs in [1u8, 2, 3, 4, 6] {
        let mut with_bypass = NocConfig::variant(NetworkVariant::LowSwingBroadcastBypass)?
            .with_mix(TrafficMix::broadcast_only())
            .with_seed_mode(SeedMode::PerNode);
        with_bypass.router.request_vcs = VcConfig::new(vcs, 1);
        let mut without_bypass = NocConfig::variant(NetworkVariant::LowSwingBroadcastNoBypass)?
            .with_mix(TrafficMix::broadcast_only())
            .with_seed_mode(SeedMode::PerNode);
        without_bypass.router.request_vcs = VcConfig::new(vcs, 1);
        println!(
            "{:>12} {:>22.0} {:>22.0}",
            vcs,
            saturation_throughput(with_bypass)?,
            saturation_throughput(without_bypass)?
        );
    }
    println!();
    println!("the chip's choice (4 request VCs) saturates the bypassed pipeline: adding more VCs");
    println!(
        "buys little, while the 3-cycle-per-hop pipeline without bypassing needs more buffers"
    );
    println!("to reach the same throughput - the trade-off Section 3.3 describes.");
    Ok(())
}
