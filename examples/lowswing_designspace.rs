//! Low-swing datapath design-space exploration (Figs. 7, 10, 11, 12 and
//! Tables 3-4 territory).
//!
//! Sweeps the voltage swing against reliability and energy, the link length
//! against the maximum single-cycle ST+LT frequency, and compares repeated
//! versus repeaterless 2 mm spans — the circuit-level trade-offs the paper's
//! case study discusses.
//!
//! Run with: `cargo run --release --example lowswing_designspace`

use noc_repro::circuit::{
    AreaModel, CriticalPathModel, EyeAnalysis, LowSwingLink, SenseAmpVariation, Wire,
};

fn main() {
    println!("== swing vs reliability vs energy (1000 Monte-Carlo samples per point) ==");
    let variation = SenseAmpVariation::chip_45nm();
    println!(
        "{:>10} {:>14} {:>16} {:>16}",
        "swing mV", "sigma margin", "failure rate", "rel. energy"
    );
    for (swing, analytic, energy) in variation.fig10_sweep(&[0.15, 0.2, 0.25, 0.3, 0.4, 0.5]) {
        let mc = variation.monte_carlo(swing, 1000, 7);
        println!(
            "{:>10.0} {:>14.1} {:>9.4} ({:.1e}) {:>16.2}",
            swing * 1000.0,
            variation.sigma_margin(swing),
            mc.failure_rate(),
            analytic,
            energy
        );
    }

    println!();
    println!("== link length vs energy and maximum single-cycle ST+LT frequency ==");
    println!(
        "{:>10} {:>18} {:>18} {:>12}",
        "length mm", "low-swing fJ/bit", "full-swing fJ/bit", "max GHz"
    );
    for length in [0.5, 1.0, 1.5, 2.0, 3.0] {
        let wire = Wire::link_45nm(length);
        let low = LowSwingLink::new(wire, 0.3);
        let full = LowSwingLink::full_swing_equivalent(wire);
        println!(
            "{:>10.1} {:>18.1} {:>18.1} {:>12.2}",
            length,
            low.energy_per_bit_fj(),
            full.energy_per_bit_fj(),
            low.max_frequency_ghz()
        );
    }

    println!();
    println!("== repeated vs repeaterless 2 mm span at 2.5 Gb/s ==");
    for (name, analysis) in [
        ("1 mm repeated", EyeAnalysis::repeated_2mm()),
        ("2 mm repeaterless", EyeAnalysis::repeaterless_2mm()),
    ] {
        println!(
            "{name:<18}: {} cycle(s), {:>6.1} fJ/bit, eye {:.0} mV nominal / {:.0} mV at +50% wire R",
            analysis.latency_cycles(),
            analysis.energy_per_bit_fj(),
            analysis.eye_height_v(2.5, 1.0) * 1000.0,
            analysis.eye_height_v(2.5, 1.5) * 1000.0
        );
    }

    println!();
    println!("== what the low-swing crossbar and bypassing cost ==");
    let area = AreaModel::chip_45nm().table4();
    println!(
        "crossbar area : {:>8.0} -> {:>8.0} um^2 ({:.1}x)",
        area.full_swing_crossbar_um2, area.low_swing_crossbar_um2, area.crossbar_overhead
    );
    println!(
        "router area   : {:>8.0} -> {:>8.0} um^2 ({:.1}x)",
        area.full_swing_router_um2, area.low_swing_router_um2, area.router_overhead
    );
    let timing = CriticalPathModel::chip_45nm().table3();
    println!(
        "critical path : {:.0} -> {:.0} ps post-layout ({:.2}x), measured {:.0} ps ({:.2} GHz)",
        timing.baseline_post_layout_ps,
        timing.proposed_post_layout_ps,
        timing.post_layout_overhead,
        timing.measured_ps,
        timing.measured_frequency_ghz
    );
}
