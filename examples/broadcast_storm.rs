//! Broadcast-heavy workload study (the scenario behind Fig. 13).
//!
//! Cache-coherence protocols become more broadcast-intensive as core counts
//! grow; this example sweeps broadcast-only traffic over injection rate and
//! compares the proposed router-level multicast network against a baseline
//! whose NICs must duplicate every broadcast into 15 unicasts.
//!
//! Run with: `cargo run --release --example broadcast_storm`

use noc_repro::noc::{sweep, NetworkVariant, Scenario};
use noc_repro::traffic::{SeedMode, TrafficMix};
use noc_repro::types::NocError;

fn main() -> Result<(), NocError> {
    let rates = [0.005, 0.015, 0.03, 0.045, 0.06, 0.075];
    let storm = |variant| {
        Scenario::builder()
            .variant(variant)
            .mix(TrafficMix::broadcast_only())
            .seed_mode(SeedMode::PerNode)
            .build()
            .map(|scenario| *scenario.config())
    };
    let proposed = storm(NetworkVariant::LowSwingBroadcastBypass)?;
    let baseline = storm(NetworkVariant::FullSwingUnicast)?;

    println!(
        "== broadcast storm: proposed (router-level multicast) vs baseline (NIC duplication) =="
    );
    println!(
        "{:>8} {:>22} {:>22}",
        "rate", "baseline lat/thru", "proposed lat/thru"
    );
    let comparison = sweep::compare(proposed, baseline, &rates, 500, 3_000)?;
    for (b, p) in comparison
        .baseline
        .points
        .iter()
        .zip(comparison.proposed.points.iter())
    {
        println!(
            "{:>8.3} {:>12.1}cyc {:>7.0}Gb/s {:>12.1}cyc {:>7.0}Gb/s",
            p.injection_rate, b.latency_cycles, b.received_gbps, p.latency_cycles, p.received_gbps
        );
    }
    println!();
    println!(
        "low-load latency reduction : {:.1}%  (paper: 55.1% for broadcast-only traffic)",
        comparison.latency_reduction * 100.0
    );
    println!(
        "saturation throughput gain : {:.2}x (paper: 2.2x)",
        comparison.throughput_improvement
    );
    println!(
        "fraction of the 1024 Gb/s theoretical limit: {:.0}% (paper: 91%)",
        comparison.fraction_of_theoretical_limit * 100.0
    );
    Ok(())
}
