//! Quickstart: build the fabricated chip's network, push some mixed traffic
//! through it, and print what the paper's headline metrics look like on this
//! reproduction.
//!
//! Run with: `cargo run --release --example quickstart`

use noc_repro::noc::{NocConfig, Simulation};
use noc_repro::topology::limits::MeshLimits;
use noc_repro::types::NocError;

fn main() -> Result<(), NocError> {
    // The chip as fabricated: 4x4 mesh, 6 VCs / 10 buffers per port,
    // XY-tree multicast, lookahead virtual bypassing, low-swing datapath,
    // identical PRBS seeds in every NIC (the silicon artifact).
    let config = NocConfig::proposed_chip()?;
    let mut sim = Simulation::new(config)?;

    // Mixed traffic at a moderate load: 0.08 flits/node/cycle offered.
    let result = sim.run(0.08, 1_000, 5_000)?;

    let limits = MeshLimits::new(4);
    println!("== quickstart: the proposed 16-node mesh NoC ==");
    println!(
        "offered load          : {:.3} flits/node/cycle",
        result.injection_rate
    );
    println!(
        "average packet latency: {:.1} cycles",
        result.average_latency_cycles
    );
    println!(
        "p95 packet latency    : {:.1} cycles",
        result.p95_latency_cycles
    );
    println!(
        "received throughput   : {:.0} Gb/s ({:.1} flits/cycle)",
        result.received_gbps, result.received_flits_per_cycle
    );
    println!(
        "theoretical limit     : {:.0} Gb/s ({:.0} flits/cycle)",
        limits.throughput_limit_gbps(true, 64, 1.0),
        limits.broadcast_throughput_limit_flits_per_cycle()
    );
    println!(
        "bypass fraction       : {:.0}%",
        result.bypass_fraction * 100.0
    );

    let power = result.power(&config.energy_params());
    println!("estimated power       : {:.0} mW", power.total_mw());
    println!(
        "  clocking {:.0} mW | logic+buffers {:.0} mW | datapath {:.0} mW | leakage {:.0} mW",
        power.clocking_group_mw(),
        power.router_logic_and_buffer_mw(),
        power.datapath_group_mw(),
        power.leakage_mw
    );
    Ok(())
}
