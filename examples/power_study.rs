//! Power waterfall study (the scenario behind Figs. 6 and 8).
//!
//! Runs the four design variants A-D at the same delivered broadcast
//! throughput and prices the resulting activity with the measured-silicon
//! calibration, an ORION-style model and a post-layout-style model.
//!
//! Run with: `cargo run --release --example power_study`

use noc_repro::noc::{NetworkVariant, NocConfig, Simulation};
use noc_repro::power::{MeasuredPowerModel, OrionPowerModel, PostLayoutPowerModel, PowerEstimator};
use noc_repro::traffic::TrafficMix;
use noc_repro::types::NocError;

fn main() -> Result<(), NocError> {
    // One broadcast every ~23 cycles per node delivers ~650 Gb/s network-wide.
    let rate = 0.0425;

    println!("== power waterfall at ~650 Gb/s broadcast delivery ==");
    println!(
        "{:<38} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "variant", "clock mW", "logic mW", "dpath mW", "leak mW", "total mW"
    );
    let mut first_total = None;
    for variant in NetworkVariant::FIG6 {
        let config = NocConfig::variant(variant)?.with_mix(TrafficMix::broadcast_only());
        let mut sim = Simulation::new(config)?;
        let result = sim.run(rate, 1_000, 4_000)?;
        let power = result.power(&config.energy_params());
        println!(
            "{:<38} {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:>10.1}",
            format!("{:?}", variant),
            power.clocking_group_mw(),
            power.router_logic_and_buffer_mw(),
            power.datapath_group_mw(),
            power.leakage_mw,
            power.total_mw()
        );
        let first = *first_total.get_or_insert(power.total_mw());
        if power.total_mw() < first {
            println!(
                "{:<38} {:>54}",
                "",
                format!(
                    "(-{:.1}% vs variant A)",
                    (1.0 - power.total_mw() / first) * 100.0
                )
            );
        }

        // For the fabricated configuration, also show how the three
        // estimation methodologies disagree (Fig. 8).
        if variant == NetworkVariant::LowSwingBroadcastBypass {
            let energy = config.energy_params();
            let measured = MeasuredPowerModel::new(energy)
                .estimate(&result.counters, result.total_cycles, result.frequency_ghz)
                .total_mw();
            let orion = OrionPowerModel::new(energy)
                .estimate(&result.counters, result.total_cycles, result.frequency_ghz)
                .total_mw();
            let post = PostLayoutPowerModel::new(energy)
                .estimate(&result.counters, result.total_cycles, result.frequency_ghz)
                .total_mw();
            println!();
            println!("estimation methodologies for the fabricated variant:");
            println!("  measured calibration : {measured:>8.1} mW");
            println!(
                "  ORION-style          : {orion:>8.1} mW ({:.1}x of measured; paper: 4.8-5.3x)",
                orion / measured
            );
            println!(
                "  post-layout-style    : {post:>8.1} mW ({:+.1}% of measured; paper: 6-13%)",
                (post / measured - 1.0) * 100.0
            );
        }
    }
    Ok(())
}
